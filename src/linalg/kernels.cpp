#include "linalg/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define VMAP_KERN_X86 1
#include <immintrin.h>
#else
#define VMAP_KERN_X86 0
#endif

namespace vmap::linalg::kern {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are the semantics contract: every AVX2
// kernel below must produce byte-identical results.
// ---------------------------------------------------------------------------

namespace ref {

void axpy(std::size_t n, double a, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void xpby(std::size_t n, const double* z, double b, double* p) {
  for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + b * p[i];
}

void scale(std::size_t n, double a, double* x) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

void add(std::size_t n, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void sub(std::size_t n, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

void sub_div(std::size_t n, const double* g, double d, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= g[i] / d;
}

void mul_to(std::size_t n, const double* x, const double* y, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] * y[i];
}

void pack_panel(std::size_t n, const double* r0, const double* r1,
                const double* r2, const double* r3, double* panel) {
  for (std::size_t k = 0; k < n; ++k) {
    panel[k * 4 + 0] = r0[k];
    panel[k * 4 + 1] = r1[k];
    panel[k * 4 + 2] = r2[k];
    panel[k * 4 + 3] = r3[k];
  }
}

void dot_panel(std::size_t n, const double* a, const double* panel,
               double* out4) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double ak = a[k];
    s0 += ak * panel[k * 4 + 0];
    s1 += ak * panel[k * 4 + 1];
    s2 += ak * panel[k * 4 + 2];
    s3 += ak * panel[k * 4 + 3];
  }
  out4[0] = s0;
  out4[1] = s1;
  out4[2] = s2;
  out4[3] = s3;
}

void dot_panel2(std::size_t n, const double* a, const double* b,
                const double* panel, double* out_a, double* out_b) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  double b0 = 0.0, b1 = 0.0, b2 = 0.0, b3 = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double ak = a[k];
    const double bk = b[k];
    const double p0 = panel[k * 4 + 0];
    const double p1 = panel[k * 4 + 1];
    const double p2 = panel[k * 4 + 2];
    const double p3 = panel[k * 4 + 3];
    a0 += ak * p0;
    a1 += ak * p1;
    a2 += ak * p2;
    a3 += ak * p3;
    b0 += bk * p0;
    b1 += bk * p1;
    b2 += bk * p2;
    b3 += bk * p3;
  }
  out_a[0] = a0;
  out_a[1] = a1;
  out_a[2] = a2;
  out_a[3] = a3;
  out_b[0] = b0;
  out_b[1] = b1;
  out_b[2] = b2;
  out_b[3] = b3;
}

double dot(std::size_t n, const double* x, const double* y) {
  // Fixed 4-lane strided order: lane l owns i ≡ l (mod 4); lanes combine
  // as (l0+l2)+(l1+l3); tail folds in sequentially. Matches the AVX2
  // horizontal-sum below exactly.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    s0 += x[i + 0] * y[i + 0];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  double s = (s0 + s2) + (s1 + s3);
  for (std::size_t i = n4; i < n; ++i) s += x[i] * y[i];
  return s;
}

double nrm2sq(std::size_t n, const double* x) { return dot(n, x, x); }

}  // namespace ref

// ---------------------------------------------------------------------------
// AVX2 kernels.
//
// Compiled with target("avx2") and deliberately WITHOUT "fma": GCC's
// _mm256_mul_pd/_mm256_add_pd lower to plain vector mul/add expressions
// which the default -ffp-contract=fast would happily fuse into a
// single-rounding FMA if the FMA ISA were enabled — and that would break
// byte-identity with the scalar (two-rounding) reference. With FMA left
// out of the target set, contraction is impossible.
// ---------------------------------------------------------------------------

#if VMAP_KERN_X86

namespace avx2 {

#define VMAP_AVX2 __attribute__((target("avx2")))

VMAP_AVX2 void axpy(std::size_t n, double a, const double* x, double* y) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vy = _mm256_loadu_pd(y + i);
    const __m256d vx = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(y + i,
                     _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

VMAP_AVX2 void xpby(std::size_t n, const double* z, double b, double* p) {
  const __m256d vb = _mm256_set1_pd(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vz = _mm256_loadu_pd(z + i);
    const __m256d vp = _mm256_loadu_pd(p + i);
    _mm256_storeu_pd(p + i,
                     _mm256_add_pd(vz, _mm256_mul_pd(vb, vp)));
  }
  for (; i < n; ++i) p[i] = z[i] + b * p[i];
}

VMAP_AVX2 void scale(std::size_t n, double a, double* x) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= a;
}

VMAP_AVX2 void add(std::size_t n, const double* x, double* y) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

VMAP_AVX2 void sub(std::size_t n, const double* x, double* y) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_sub_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

VMAP_AVX2 void sub_div(std::size_t n, const double* g, double d, double* y) {
  // vdivpd is correctly rounded per element, exactly like the scalar
  // division — never replace with multiply-by-reciprocal.
  const __m256d vd = _mm256_set1_pd(d);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vy = _mm256_loadu_pd(y + i);
    const __m256d vg = _mm256_loadu_pd(g + i);
    _mm256_storeu_pd(y + i, _mm256_sub_pd(vy, _mm256_div_pd(vg, vd)));
  }
  for (; i < n; ++i) y[i] -= g[i] / d;
}

VMAP_AVX2 void mul_to(std::size_t n, const double* x, const double* y,
                      double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] * y[i];
}

VMAP_AVX2 void pack_panel(std::size_t n, const double* r0, const double* r1,
                          const double* r2, const double* r3, double* panel) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    // 4x4 transpose: rows (r0..r3)[k..k+3] -> panel[k..k+3][lane].
    const __m256d a = _mm256_loadu_pd(r0 + k);
    const __m256d b = _mm256_loadu_pd(r1 + k);
    const __m256d c = _mm256_loadu_pd(r2 + k);
    const __m256d d = _mm256_loadu_pd(r3 + k);
    const __m256d t0 = _mm256_unpacklo_pd(a, b);  // a0 b0 a2 b2
    const __m256d t1 = _mm256_unpackhi_pd(a, b);  // a1 b1 a3 b3
    const __m256d t2 = _mm256_unpacklo_pd(c, d);  // c0 d0 c2 d2
    const __m256d t3 = _mm256_unpackhi_pd(c, d);  // c1 d1 c3 d3
    _mm256_storeu_pd(panel + (k + 0) * 4, _mm256_permute2f128_pd(t0, t2, 0x20));
    _mm256_storeu_pd(panel + (k + 1) * 4, _mm256_permute2f128_pd(t1, t3, 0x20));
    _mm256_storeu_pd(panel + (k + 2) * 4, _mm256_permute2f128_pd(t0, t2, 0x31));
    _mm256_storeu_pd(panel + (k + 3) * 4, _mm256_permute2f128_pd(t1, t3, 0x31));
  }
  for (; k < n; ++k) {
    panel[k * 4 + 0] = r0[k];
    panel[k * 4 + 1] = r1[k];
    panel[k * 4 + 2] = r2[k];
    panel[k * 4 + 3] = r3[k];
  }
}

VMAP_AVX2 void dot_panel(std::size_t n, const double* a, const double* panel,
                         double* out4) {
  // One accumulator per lane (= per output element), ascending k: the
  // per-element accumulation chain is exactly the scalar reference's.
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t k = 0; k < n; ++k) {
    const __m256d ak = _mm256_set1_pd(a[k]);
    const __m256d pk = _mm256_loadu_pd(panel + k * 4);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(ak, pk));
  }
  _mm256_storeu_pd(out4, acc);
}

VMAP_AVX2 void dot_panel2(std::size_t n, const double* a, const double* b,
                          const double* panel, double* out_a, double* out_b) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  for (std::size_t k = 0; k < n; ++k) {
    const __m256d pk = _mm256_loadu_pd(panel + k * 4);
    acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(_mm256_set1_pd(a[k]), pk));
    acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(_mm256_set1_pd(b[k]), pk));
  }
  _mm256_storeu_pd(out_a, acc_a);
  _mm256_storeu_pd(out_b, acc_b);
}

VMAP_AVX2 double dot(std::size_t n, const double* x, const double* y) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  // Horizontal sum: lo+hi gives (l0+l2, l1+l3); then (l0+l2)+(l1+l3) —
  // the exact combine order ref::dot mirrors.
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double s = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (std::size_t i = n4; i < n; ++i) s += x[i] * y[i];
  return s;
}

VMAP_AVX2 double nrm2sq(std::size_t n, const double* x) {
  return dot(n, x, x);
}

#undef VMAP_AVX2

}  // namespace avx2

#endif  // VMAP_KERN_X86

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

namespace {

bool detect_simd_available() {
#if VMAP_KERN_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool env_allows_simd() {
  const char* v = std::getenv("VMAP_SIMD");
  if (v == nullptr || *v == '\0') return true;
  return std::strcmp(v, "0") != 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled{detect_simd_available() &&
                                   env_allows_simd()};
  return enabled;
}

inline bool use_simd() {
  return enabled_flag().load(std::memory_order_relaxed);
}

}  // namespace

bool simd_available() {
  static const bool available = detect_simd_available();
  return available;
}

bool simd_enabled() { return use_simd(); }

void set_simd_enabled(bool on) {
  enabled_flag().store(on && simd_available(), std::memory_order_relaxed);
}

const char* simd_level() { return use_simd() ? "avx2" : "scalar"; }

#if VMAP_KERN_X86
#define VMAP_KERN_DISPATCH(call) \
  if (use_simd()) return avx2::call; \
  return ref::call
#else
#define VMAP_KERN_DISPATCH(call) return ref::call
#endif

void axpy(std::size_t n, double a, const double* x, double* y) {
  VMAP_KERN_DISPATCH(axpy(n, a, x, y));
}

void xpby(std::size_t n, const double* z, double b, double* p) {
  VMAP_KERN_DISPATCH(xpby(n, z, b, p));
}

void scale(std::size_t n, double a, double* x) {
  VMAP_KERN_DISPATCH(scale(n, a, x));
}

void add(std::size_t n, const double* x, double* y) {
  VMAP_KERN_DISPATCH(add(n, x, y));
}

void sub(std::size_t n, const double* x, double* y) {
  VMAP_KERN_DISPATCH(sub(n, x, y));
}

void sub_div(std::size_t n, const double* g, double d, double* y) {
  VMAP_KERN_DISPATCH(sub_div(n, g, d, y));
}

void mul_to(std::size_t n, const double* x, const double* y, double* out) {
  VMAP_KERN_DISPATCH(mul_to(n, x, y, out));
}

void pack_panel(std::size_t n, const double* r0, const double* r1,
                const double* r2, const double* r3, double* panel) {
  VMAP_KERN_DISPATCH(pack_panel(n, r0, r1, r2, r3, panel));
}

void dot_panel(std::size_t n, const double* a, const double* panel,
               double* out4) {
  VMAP_KERN_DISPATCH(dot_panel(n, a, panel, out4));
}

void dot_panel2(std::size_t n, const double* a, const double* b,
                const double* panel, double* out_a, double* out_b) {
  VMAP_KERN_DISPATCH(dot_panel2(n, a, b, panel, out_a, out_b));
}

double dot(std::size_t n, const double* x, const double* y) {
  VMAP_KERN_DISPATCH(dot(n, x, y));
}

double nrm2sq(std::size_t n, const double* x) {
  VMAP_KERN_DISPATCH(nrm2sq(n, x));
}

#undef VMAP_KERN_DISPATCH

}  // namespace vmap::linalg::kern
