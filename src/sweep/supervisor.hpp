#pragma once
// Crash-isolated, resumable scenario sweep supervisor.
//
// SweepSupervisor expands a ScenarioMatrix into jobs and dispatches each to
// a fork/exec'd worker subprocess, so a segfault, abort, OOM kill, or hang
// inside one scenario's solves is fully contained. Per job it enforces:
//   * a wall-clock deadline (SIGKILL on expiry, classified "hang_timeout");
//   * bounded retries with the deterministic util/status backoff schedule
//     (crash / timeout / garbage output are all treated as potentially
//     transient);
//   * quarantine once retries are exhausted — the failure class is
//     recorded and the sweep continues instead of aborting.
// Every state transition is appended to the checksummed sweep journal, so
// `resume = true` skips completed jobs exactly-once (reusing their recorded
// result payloads) and re-runs in-flight ones.
//
// The aggregate CSV/JSON report is derived only from deterministic fields
// (scenario axes + worker results + terminal status), sorted in canonical
// job order — byte-identical whether the sweep ran uninterrupted, was
// SIGKILLed and resumed, or ran under worker chaos injection.

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/journal.hpp"
#include "sweep/scenario.hpp"
#include "util/status.hpp"

namespace vmap::sweep {

/// Worker-side chaos injection (bench/sweep_suite's --inject modes).
/// `mode` is passed to the worker as --inject on the *first* attempt of
/// every `every_nth`-th job; retries run clean, so a chaos sweep must
/// still complete every job. supervisor_kill is not a worker mode — the
/// bench kills the whole supervisor process instead.
struct ChaosConfig {
  std::string mode;            ///< "", worker_crash, worker_hang,
                               ///< worker_garbage_output
  std::size_t every_nth = 3;   ///< inject jobs 0, n, 2n, ...
  /// Deadline for attempts that carry a hang injection (the worker is
  /// guaranteed to stall immediately; waiting the full job deadline would
  /// only slow the harness down).
  std::size_t injected_deadline_ms = 2000;
};

/// Cross-process telemetry switch. kAuto follows the supervisor's own
/// VMAP_TRACE environment variable: when the operator asked for a trace,
/// the fleet produces shards and a merged trace; otherwise the sweep is
/// bit-identical to the pre-telemetry engine.
enum class TelemetryMode { kAuto, kOn, kOff };

struct SweepOptions {
  /// Worker command prefix, e.g. {"build/tools/sweep_worker"}. The
  /// supervisor appends: --scenario <spec> --job <i> --attempt <k>
  /// [--inject <mode>].
  std::vector<std::string> worker_argv;
  /// Journal, per-job output files, and reports live here (must exist).
  std::string work_dir = "sweep_out";
  std::size_t parallel = 1;        ///< concurrent worker subprocesses
  std::size_t deadline_ms = 120000;  ///< per-attempt wall clock (0 = none)
  std::size_t max_attempts = 3;
  std::size_t base_backoff_ms = 0;   ///< deterministic schedule base
  double backoff_multiplier = 2.0;
  bool resume = false;             ///< replay + continue the journal
  bool verbose = false;
  TelemetryMode telemetry = TelemetryMode::kAuto;
  ChaosConfig chaos;
};

/// One aggregate-report row (canonical job order).
struct SweepRow {
  std::size_t job_index = 0;
  Scenario scenario;
  bool completed = false;
  std::string failure_class;  ///< empty when completed
  JobResult result;           ///< zeros when quarantined
  std::size_t attempts = 0;   ///< observational only — never in the report
  bool from_journal = false;  ///< resumed without re-running
};

struct SweepResult {
  std::vector<SweepRow> rows;
  std::size_t jobs_total = 0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_quarantined = 0;
  std::size_t jobs_skipped_resume = 0;  ///< satisfied from the journal
  std::size_t attempts_total = 0;
  std::size_t retries_total = 0;
  std::size_t duplicate_terminals = 0;  ///< journal dedupe count

  /// Deterministic aggregate report (no attempt counts, no timings):
  /// byte-identical across uninterrupted / killed+resumed / chaos runs.
  /// `telemetry_json`, when non-empty, is embedded as the "telemetry"
  /// section — per-axis COUNTER aggregates only, which are themselves
  /// deterministic, so the byte-identity contract survives telemetry.
  std::string csv() const;
  std::string json(std::uint64_t matrix_hash,
                   const std::string& telemetry_json = "") const;
};

class SweepSupervisor {
 public:
  SweepSupervisor(ScenarioMatrix matrix, SweepOptions options);

  /// Runs (or resumes) the sweep to completion and writes
  /// work_dir/sweep_report.{csv,json} atomically. With telemetry on it
  /// also merges the workers' shards into work_dir/sweep_trace.json and
  /// embeds the per-axis counter aggregates in the JSON report. Fails
  /// only on harness errors (unwritable journal, matrix mismatch on
  /// resume) — job failures quarantine instead.
  StatusOr<SweepResult> run();

 private:
  Status run_job(std::size_t job_index, const Scenario& scenario,
                 SweepRow& row);
  StatusOr<JobResult> run_attempt(std::size_t job_index,
                                  const Scenario& scenario,
                                  std::size_t attempt,
                                  std::string* failure_class);

  ScenarioMatrix matrix_;
  SweepOptions options_;
  SweepJournal journal_;
  std::uint64_t matrix_hash_ = 0;
  bool telemetry_on_ = false;
};

}  // namespace vmap::sweep
