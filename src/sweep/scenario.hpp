#pragma once
// Declarative scenario matrix for the sweep engine.
//
// A Scenario is one (PDN × workload × corner) point: pad arrangement
// (square / triangular / hexagonal, per Carroll & Ortega-Cerdà), grid
// density and layer count, core count, per-die voltage offset corner (the
// Vmin variation-alignment motivation), and workload archetype. Each
// scenario round-trips through a canonical `spec()` string — the only
// thing a worker subprocess receives — and builds its full ExperimentSetup
// deterministically from it, so a job's result is a pure function of the
// spec and can be replayed, resumed, and byte-compared across runs.
//
// ScenarioMatrix is the cross product of per-axis value lists, expanded in
// a fixed nesting order; matrix_hash() keys the sweep journal so a resume
// against a different matrix is refused instead of mis-mapping job ids.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "grid/power_grid.hpp"
#include "util/status.hpp"

namespace vmap::sweep {

/// One sweep point. Default values give the miniature 2-core platform the
/// unit tests use; the collection-scale fields ride along in the spec so a
/// worker reproduces the exact dataset without any shared state.
struct Scenario {
  grid::PadArrangement pads = grid::PadArrangement::kSquare;
  double density = 1.0;      ///< tiles-per-core multiplier (grid density)
  bool two_layer = false;    ///< top-metal mesh + vias
  std::size_t cores_x = 2;
  std::size_t cores_y = 1;
  double vdd_offset = 0.0;   ///< per-die corner offset (V) on VDD = 1.0
  std::string workload = "parsec_mini";  ///< archetype_suite() name
  std::uint64_t seed = 20150607;
  // Collection scale (kept small: every job re-simulates its platform).
  std::size_t train_maps = 40;
  std::size_t test_maps = 20;
  std::size_t warmup_steps = 60;
  std::size_t calibration_steps = 150;

  /// Canonical `key=value;...` encoding; parse(spec()).spec() == spec().
  std::string spec() const;
  /// Short human-readable id for report rows ("tri-d1.00-L2-2x1-v-0.030-…").
  std::string id() const;
  /// FNV-1a over the spec bytes; journal records are keyed on it.
  std::uint64_t hash() const;
  /// Builds the full experiment platform configuration.
  core::ExperimentSetup setup() const;

  /// Parses a spec string; kInvalidArgument on unknown keys, malformed
  /// values, or missing fields.
  static StatusOr<Scenario> parse(const std::string& spec);
};

/// Cross product of axis values. Every axis must be non-empty.
struct ScenarioMatrix {
  std::vector<grid::PadArrangement> pad_arrangements = {
      grid::PadArrangement::kSquare};
  std::vector<double> densities = {1.0};
  std::vector<bool> layer_modes = {false};
  std::vector<std::pair<std::size_t, std::size_t>> core_grids = {{2, 1}};
  std::vector<double> vdd_offsets = {0.0};
  std::vector<std::string> workloads = {"parsec_mini"};
  std::uint64_t seed = 20150607;
  std::size_t train_maps = 40;
  std::size_t test_maps = 20;
  std::size_t warmup_steps = 60;
  std::size_t calibration_steps = 150;

  /// Expands the cross product in fixed nesting order (pads outermost,
  /// workloads innermost); job index i is position i of this list, always.
  std::vector<Scenario> expand() const;

  /// FNV-1a over every expanded spec, chained in order.
  std::uint64_t hash() const;
};

/// What a worker measures for one scenario (the Table-2-style summary).
struct JobResult {
  std::size_t sensors = 0;         ///< total sensors placed
  std::uint64_t placement = 0;     ///< FNV-1a over the sensor node ids
  double te = 0.0;                 ///< prediction-detector total error rate
  double rel_err = 0.0;            ///< voltage-map relative error
};

/// Serializes a result as the worker's payload text
/// ("sensors=12 placement=0123456789abcdef te=… rel_err=…").
std::string encode_result_payload(const JobResult& result);

/// Parses a payload; kCorruption when malformed (a worker that exited 0
/// but printed garbage must be classified, not trusted).
StatusOr<JobResult> parse_result_payload(const std::string& payload);

/// The self-checksummed line a worker prints on success:
/// "RESULT <payload> <fnv1a64-of-payload-hex>".
std::string encode_result_line(const JobResult& result);

/// Extracts and verifies the last RESULT line of a worker's output text.
/// kCorruption when no line is present or the checksum does not match.
StatusOr<JobResult> parse_result_output(const std::string& output);

}  // namespace vmap::sweep
