#include "sweep/telemetry.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "grid/power_grid.hpp"
#include "util/atomic_file.hpp"
#include "util/flight_recorder.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace vmap::sweep {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// --- worker side ------------------------------------------------------

/// Leaky singleton: the atexit hook may run after main()'s locals are
/// gone, and the state must survive until then.
struct WorkerShard {
  std::string path;
  std::size_t job = 0;
  std::size_t attempt = 0;
  std::string spec;
  bool armed = false;
};

WorkerShard* worker_shard() {
  static WorkerShard* s = new WorkerShard();  // intentionally leaked
  return s;
}

void shard_at_exit() { (void)write_telemetry_shard(); }

// --- supervisor side --------------------------------------------------

bool read_file_to(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

void set_member(json::Value& obj, const std::string& key, json::Value v) {
  for (auto& [k, val] : obj.mutable_object()) {
    if (k == key) {
      val = std::move(v);
      return;
    }
  }
  obj.mutable_object().emplace_back(key, std::move(v));
}

/// Loads and validates one shard document. False (and untouched output)
/// when the file is absent, unparseable, or names a different job — the
/// merge degrades to a counted gap, it never aborts the sweep.
bool load_shard(const JobTelemetry& job, json::Value& shard) {
  std::string bytes;
  if (!read_file_to(job.shard_path, bytes)) return false;
  StatusOr<json::Value> doc = json::parse(bytes);
  if (!doc.ok() || !doc->is_object()) return false;
  const json::Value* job_field = doc->find("job");
  if (!job_field || !job_field->is_number() ||
      static_cast<std::size_t>(job_field->as_number()) != job.job_index)
    return false;
  const json::Value* trace = doc->find("trace");
  if (!trace || !trace->is_object() || !trace->find("traceEvents") ||
      !trace->find("traceEvents")->is_array())
    return false;
  shard = std::move(*doc);
  return true;
}

/// The six scenario axes, as (axis name, canonical value) pairs — the
/// keys the aggregate section groups counters under.
std::vector<std::pair<std::string, std::string>> axis_values(
    const Scenario& sc) {
  return {
      {"pads", grid::pad_arrangement_name(sc.pads)},
      {"density", fmt_double(sc.density)},
      {"layers", sc.two_layer ? "2" : "1"},
      {"cores", std::to_string(sc.cores_x) + "x" + std::to_string(sc.cores_y)},
      {"vdd_offset", fmt_double(sc.vdd_offset)},
      {"workload", sc.workload},
  };
}

using CounterMap = std::map<std::string, std::uint64_t>;

void append_counter_map(std::string& out, const CounterMap& counters) {
  out += "{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json::escape_into(out, name);
    out += "\":" + std::to_string(value);
  }
  out += "}";
}

}  // namespace

bool init_worker_telemetry_from_env(std::size_t job, std::size_t attempt,
                                    const std::string& scenario_spec) {
  const char* env = std::getenv(kShardEnv);
  if (!env || !*env) return false;
  WorkerShard* s = worker_shard();
  s->path = env;
  s->job = job;
  s->attempt = attempt;
  s->spec = scenario_spec;
  if (!s->armed) std::atexit(shard_at_exit);
  s->armed = true;
  trace_enable_capture();
  return true;
}

Status write_telemetry_shard() {
  WorkerShard* s = worker_shard();
  if (!s->armed) return Status::Ok();
  std::string doc = "{\"schema\":1,\"job\":" + std::to_string(s->job) +
                    ",\"attempt\":" + std::to_string(s->attempt) +
                    ",\"scenario\":\"";
  json::escape_into(doc, s->spec);
  doc += "\",\"metrics\":" + metrics::snapshot_json() +
         ",\"trace\":" + trace_events_json() + "}\n";
  return write_file_atomic(s->path, doc);
}

std::string shard_path_for_job(const std::string& work_dir, std::size_t job) {
  return work_dir + "/job_" + std::to_string(job) + ".shard.json";
}

std::string flight_path_for_job(const std::string& work_dir, std::size_t job) {
  return work_dir + "/job_" + std::to_string(job) + ".flight";
}

StatusOr<MergeOutput> merge_job_telemetry(
    const std::vector<JobTelemetry>& jobs) {
  MergeOutput out;
  std::string& t = out.trace_json;
  t = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const std::string& row) {
    if (!first) t += ",\n";
    first = false;
    t += row;
  };
  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"sweep_supervisor\"}}");

  CounterMap counters_total;
  // axis -> axis value -> counter name -> summed value. std::map keys
  // keep every aggregate section sorted, hence byte-stable.
  std::map<std::string, std::map<std::string, CounterMap>> by_axis;

  for (const JobTelemetry& job : jobs) {
    const std::string pid = std::to_string(job.job_index + 2);
    std::string row = "{\"ph\":\"M\",\"pid\":" + pid +
                      ",\"tid\":0,\"name\":\"process_name\",\"args\":"
                      "{\"name\":\"job_" +
                      std::to_string(job.job_index) + " ";
    json::escape_into(row, job.scenario.id());
    row += "\"}}";
    emit(row);
    row = "{\"ph\":\"M\",\"pid\":" + pid +
          ",\"tid\":0,\"name\":\"process_labels\",\"args\":{\"labels\":\"";
    json::escape_into(row, job.status);
    row += "\"}}";
    emit(row);

    json::Value shard;
    if (load_shard(job, shard)) {
      ++out.shards_merged;
      const json::Value* attempt = shard.find("attempt");
      const long long attempt_n =
          attempt && attempt->is_number()
              ? static_cast<long long>(attempt->as_number())
              : -1;
      // One instant event carrying the job metadata the ISSUE wants on
      // every job row: scenario spec, attempt number, outcome.
      row = "{\"ph\":\"i\",\"pid\":" + pid +
            ",\"tid\":0,\"name\":\"job_meta\",\"ts\":0,\"s\":\"p\","
            "\"args\":{\"scenario\":\"";
      json::escape_into(row, job.scenario.spec());
      row += "\",\"attempt\":" + std::to_string(attempt_n) +
             ",\"status\":\"";
      json::escape_into(row, job.status);
      row += "\"}}";
      emit(row);

      // Re-emit the worker's events under this job's pid. Serialization
      // goes through the parsed values, so the bytes depend only on the
      // shard contents, never on merge-time state.
      json::Value* trace = const_cast<json::Value*>(shard.find("trace"));
      json::Value* events =
          const_cast<json::Value*>(trace->find("traceEvents"));
      for (json::Value& ev : events->mutable_array()) {
        if (!ev.is_object()) continue;
        set_member(ev, "pid",
                   json::Value::make_number(
                       static_cast<double>(job.job_index + 2)));
        emit(json::serialize(ev));
      }

      const json::Value* metrics_obj = shard.find("metrics");
      const json::Value* counters =
          metrics_obj ? metrics_obj->find("counters") : nullptr;
      if (counters && counters->is_object()) {
        for (const auto& [name, value] : counters->as_object()) {
          if (!value.is_number()) continue;
          const auto v = static_cast<std::uint64_t>(value.as_number());
          counters_total[name] += v;
          for (const auto& [axis, axis_value] : axis_values(job.scenario))
            by_axis[axis][axis_value][name] += v;
        }
      }
    } else {
      ++out.shards_missing;
    }

    // Quarantined jobs' flight-recorder tails ride along as instant
    // events on a dedicated timeline row (ts is the tail position — the
    // ring has no wall clock, and artificial timestamps keep the merge
    // deterministic).
    std::string flight_text;
    if (!job.flight_path.empty() && read_file_to(job.flight_path,
                                                 flight_text)) {
      const std::vector<flight::Event> tail =
          flight::parse_dump(flight_text);
      if (!tail.empty()) {
        ++out.flight_jobs;
        emit("{\"ph\":\"M\",\"pid\":" + pid +
             ",\"tid\":9999,\"name\":\"thread_name\",\"args\":{\"name\":"
             "\"flight_recorder\"}}");
        for (std::size_t i = 0; i < tail.size(); ++i) {
          const flight::Event& e = tail[i];
          row = "{\"ph\":\"i\",\"pid\":" + pid +
                ",\"tid\":9999,\"name\":\"flight:";
          json::escape_into(row, flight::event_kind_name(e.kind));
          row += ":";
          json::escape_into(row, e.name);
          row += "\",\"ts\":" + std::to_string(i) +
                 ",\"s\":\"t\",\"args\":{\"seq\":" + std::to_string(e.seq) +
                 ",\"tid\":" + std::to_string(e.tid) + ",\"value\":" +
                 fmt_double(e.value) + "}}";
          emit(row);
        }
      }
    }
  }
  t += "\n]}\n";

  std::string& agg = out.aggregates_json;
  agg = "{\n    \"shards_merged\": " + std::to_string(out.shards_merged) +
        ",\n    \"shards_missing\": " + std::to_string(out.shards_missing) +
        ",\n    \"flight_jobs\": " + std::to_string(out.flight_jobs) +
        ",\n    \"counters_total\": ";
  append_counter_map(agg, counters_total);
  agg += ",\n    \"by_axis\": {";
  bool first_axis = true;
  for (const auto& [axis, values] : by_axis) {
    if (!first_axis) agg += ",";
    first_axis = false;
    agg += "\n      \"" + axis + "\": {";
    bool first_value = true;
    for (const auto& [value, counters] : values) {
      if (!first_value) agg += ",";
      first_value = false;
      agg += "\n        \"";
      json::escape_into(agg, value);
      agg += "\": ";
      append_counter_map(agg, counters);
    }
    agg += "\n      }";
  }
  agg += by_axis.empty() ? "}\n  }" : "\n    }\n  }";
  return out;
}

}  // namespace vmap::sweep
