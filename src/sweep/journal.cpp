#include "sweep/journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/atomic_file.hpp"
#include "util/hash.hpp"

namespace vmap::sweep {

namespace {

constexpr std::uint64_t kMagic = 0x564D4150535750ULL;  // "VMAPSWP"
constexpr std::uint64_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4 * sizeof(std::uint64_t);
/// Records are short text lines; anything claiming more than this is a
/// corrupt length field, not a huge record (a garbage length would
/// otherwise be indistinguishable from a truncated tail).
constexpr std::uint64_t kMaxRecordBytes = 1 << 20;

void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::string header_bytes(std::uint64_t matrix_hash) {
  std::string h;
  put_u64(h, kMagic);
  put_u64(h, kVersion);
  put_u64(h, matrix_hash);
  put_u64(h, fnv1a64(h.data(), h.size()));
  return h;
}

std::string serialize_record(const JournalRecord& r) {
  std::ostringstream s;
  char hash_hex[24];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(r.scenario_hash));
  s << static_cast<std::uint64_t>(r.event) << ' ' << r.job_index << ' '
    << hash_hex << ' ' << r.attempt;
  if (!r.detail.empty()) s << ' ' << r.detail;
  const std::string payload = s.str();
  std::string framed;
  put_u64(framed, payload.size());
  put_u64(framed, fnv1a64(payload.data(), payload.size()));
  framed += payload;
  return framed;
}

Status parse_record_payload(const std::string& payload,
                            const std::string& path, JournalRecord& r) {
  std::istringstream s(payload);
  std::uint64_t event = 0;
  std::string hash_hex;
  if (!(s >> event >> r.job_index >> hash_hex >> r.attempt))
    return Status::Corruption("sweep journal record malformed: " + path);
  if (event < 1 || event > 5)
    return Status::Corruption("sweep journal record has unknown event " +
                              std::to_string(event) + ": " + path);
  r.event = static_cast<JobEvent>(event);
  char* end = nullptr;
  r.scenario_hash = std::strtoull(hash_hex.c_str(), &end, 16);
  if (!end || *end != '\0' || hash_hex.size() != 16)
    return Status::Corruption("sweep journal record hash malformed: " + path);
  std::getline(s, r.detail);
  if (!r.detail.empty() && r.detail.front() == ' ')
    r.detail.erase(r.detail.begin());
  return Status::Ok();
}

}  // namespace

const char* job_event_name(JobEvent event) {
  switch (event) {
    case JobEvent::kDispatched: return "dispatched";
    case JobEvent::kFailed: return "failed";
    case JobEvent::kCompleted: return "completed";
    case JobEvent::kQuarantined: return "quarantined";
    case JobEvent::kShardWritten: return "shard_written";
  }
  return "?";
}

SweepJournal::SweepJournal(SweepJournal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

SweepJournal& SweepJournal::operator=(SweepJournal&& other) noexcept {
  if (this != &other) {
    this->~SweepJournal();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

SweepJournal::~SweepJournal() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

#if defined(__unix__) || defined(__APPLE__)

StatusOr<SweepJournal> SweepJournal::create(const std::string& path,
                                            std::uint64_t matrix_hash) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd < 0) return Status::Io("cannot create sweep journal: " + path);
  const std::string header = header_bytes(matrix_hash);
  if (::write(fd, header.data(), header.size()) !=
      static_cast<ssize_t>(header.size())) {
    ::close(fd);
    return Status::Io("sweep journal header write failed: " + path);
  }
  ::fsync(fd);
  fsync_parent_dir(path);
  SweepJournal j;
  j.fd_ = fd;
  j.path_ = path;
  return j;
}

StatusOr<SweepJournal> SweepJournal::open_append(const std::string& path,
                                                 std::uint64_t matrix_hash) {
  // Full replay first: refuse to append after corruption, and pin the
  // matrix hash so a resumed sweep cannot mis-map job indices.
  StatusOr<JournalReplay> replay = replay_journal(path);
  if (!replay.ok()) return replay.status();
  if (replay->matrix_hash != matrix_hash)
    return Status::InvalidArgument(
        "sweep journal was written for a different scenario matrix: " + path);
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return Status::Io("cannot append to sweep journal: " + path);
  // A truncated tail record is dead weight once tolerated; appending after
  // it would corrupt the next record, so cut it off first.
  if (replay->dropped_tail_bytes > 0) {
    const off_t end = ::lseek(fd, 0, SEEK_END);
    if (end < 0 ||
        ::ftruncate(fd, end - static_cast<off_t>(
                              replay->dropped_tail_bytes)) != 0) {
      ::close(fd);
      return Status::Io("cannot trim sweep journal tail: " + path);
    }
    ::lseek(fd, 0, SEEK_END);
  }
  SweepJournal j;
  j.fd_ = fd;
  j.path_ = path;
  return j;
}

Status SweepJournal::append(const JournalRecord& record) {
  if (fd_ < 0)
    return Status::InvalidArgument("sweep journal is not open");
  const std::string framed = serialize_record(record);
  if (::write(fd_, framed.data(), framed.size()) !=
      static_cast<ssize_t>(framed.size()))
    return Status::Io("sweep journal append failed: " + path_);
  ::fsync(fd_);
  return Status::Ok();
}

#else  // non-POSIX stub (the sweep engine is POSIX-only, like CI)

StatusOr<SweepJournal> SweepJournal::create(const std::string&,
                                            std::uint64_t) {
  return Status::Io("sweep journal is POSIX-only");
}
StatusOr<SweepJournal> SweepJournal::open_append(const std::string&,
                                                 std::uint64_t) {
  return Status::Io("sweep journal is POSIX-only");
}
Status SweepJournal::append(const JournalRecord&) {
  return Status::Io("sweep journal is POSIX-only");
}

#endif

StatusOr<JournalReplay> replay_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Io("cannot read sweep journal: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  if (bytes.size() < kHeaderBytes)
    return Status::Corruption("sweep journal too small for a header: " +
                              path);
  if (get_u64(bytes.data()) != kMagic)
    return Status::Corruption("bad sweep journal magic: " + path);
  if (get_u64(bytes.data() + 8) != kVersion)
    return Status::Corruption("sweep journal version mismatch: " + path);
  if (fnv1a64(bytes.data(), 24) != get_u64(bytes.data() + 24))
    return Status::Corruption("sweep journal header checksum mismatch: " +
                              path);

  JournalReplay replay;
  replay.matrix_hash = get_u64(bytes.data() + 16);

  std::size_t pos = kHeaderBytes;
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    if (remaining < 2 * sizeof(std::uint64_t)) {
      // Not even a full frame header: the crash-mid-append footprint.
      replay.dropped_tail_bytes = remaining;
      break;
    }
    const std::uint64_t len = get_u64(bytes.data() + pos);
    const std::uint64_t checksum = get_u64(bytes.data() + pos + 8);
    if (len > kMaxRecordBytes)
      return Status::Corruption(
          "sweep journal record length implausible (corrupt frame): " + path);
    if (remaining - 2 * sizeof(std::uint64_t) < len) {
      replay.dropped_tail_bytes = remaining;
      break;
    }
    const std::string payload = bytes.substr(pos + 16, len);
    if (fnv1a64(payload.data(), payload.size()) != checksum)
      return Status::Corruption("sweep journal record checksum mismatch: " +
                                path);
    JournalRecord record;
    const Status st = parse_record_payload(payload, path, record);
    if (!st.ok()) return st;
    replay.records.push_back(std::move(record));
    pos += 16 + len;
  }

  // Derive job states. Terminal records dedupe first-wins so a re-run that
  // raced a kill can never double-count a job.
  for (const JournalRecord& r : replay.records) {
    switch (r.event) {
      case JobEvent::kDispatched:
        if (!replay.completed.count(r.job_index) &&
            !replay.quarantined.count(r.job_index))
          replay.in_flight.insert(r.job_index);
        break;
      case JobEvent::kFailed:
        break;
      case JobEvent::kShardWritten:
        replay.shard_files[r.job_index] = r.detail;
        break;
      case JobEvent::kCompleted:
        if (replay.completed.count(r.job_index) ||
            replay.quarantined.count(r.job_index)) {
          ++replay.duplicate_terminals;
        } else {
          replay.completed.emplace(r.job_index, r);
          replay.in_flight.erase(r.job_index);
        }
        break;
      case JobEvent::kQuarantined:
        if (replay.completed.count(r.job_index) ||
            replay.quarantined.count(r.job_index)) {
          ++replay.duplicate_terminals;
        } else {
          replay.quarantined.emplace(r.job_index, r);
          replay.in_flight.erase(r.job_index);
        }
        break;
    }
  }
  return replay;
}

}  // namespace vmap::sweep
