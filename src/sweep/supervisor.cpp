#include "sweep/supervisor.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "sweep/telemetry.hpp"
#include "util/atomic_file.hpp"
#include "util/flight_recorder.hpp"
#include "util/log.hpp"
#include "util/subprocess.hpp"

namespace vmap::sweep {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

StatusOr<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Io("cannot read worker output: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::string SweepResult::csv() const {
  std::string out =
      "job,scenario,pads,density,layers,cores,vdd_offset,workload,status,"
      "sensors,placement,te,rel_err\n";
  for (const SweepRow& row : rows) {
    const Scenario& sc = row.scenario;
    out += std::to_string(row.job_index) + "," + sc.id() + "," +
           grid::pad_arrangement_name(sc.pads) + "," +
           fmt_double(sc.density) + "," + (sc.two_layer ? "2" : "1") + "," +
           std::to_string(sc.cores_x) + "x" + std::to_string(sc.cores_y) +
           "," + fmt_double(sc.vdd_offset) + "," + sc.workload + ",";
    if (row.completed) {
      out += "completed," + std::to_string(row.result.sensors) + "," +
             fmt_hex(row.result.placement) + "," + fmt_double(row.result.te) +
             "," + fmt_double(row.result.rel_err);
    } else {
      out += "quarantined:" + row.failure_class + ",0,,,";
    }
    out += "\n";
  }
  return out;
}

std::string SweepResult::json(std::uint64_t matrix_hash,
                              const std::string& telemetry_json) const {
  // Only deterministic fields: no attempt counts, no resume bookkeeping,
  // no timings — the bytes must not depend on how the sweep got here.
  std::string out = "{\n  \"schema\": 1,\n  \"matrix_hash\": \"0x" +
                    fmt_hex(matrix_hash) + "\",\n  \"jobs\": " +
                    std::to_string(jobs_total) + ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    out += "    {\"job\": " + std::to_string(row.job_index) +
           ", \"scenario\": \"" + row.scenario.id() + "\", \"status\": \"";
    out += row.completed ? "completed" : "quarantined:" + row.failure_class;
    out += "\"";
    if (row.completed) {
      out += ", \"sensors\": " + std::to_string(row.result.sensors) +
             ", \"placement\": \"0x" + fmt_hex(row.result.placement) +
             "\", \"te\": " + fmt_double(row.result.te) +
             ", \"rel_err\": " + fmt_double(row.result.rel_err);
    }
    out += "}";
    if (i + 1 < rows.size()) out += ",";
    out += "\n";
  }
  out += "  ]";
  if (!telemetry_json.empty())
    out += ",\n  \"telemetry\": " + telemetry_json;
  out += "\n}\n";
  return out;
}

SweepSupervisor::SweepSupervisor(ScenarioMatrix matrix, SweepOptions options)
    : matrix_(std::move(matrix)), options_(std::move(options)) {}

namespace {
std::mutex g_journal_mutex;
}  // namespace

StatusOr<JobResult> SweepSupervisor::run_attempt(
    std::size_t job_index, const Scenario& scenario, std::size_t attempt,
    std::string* failure_class) {
  const ChaosConfig& chaos = options_.chaos;
  const bool inject =
      !chaos.mode.empty() && chaos.mode.rfind("worker_", 0) == 0 &&
      attempt == 0 && chaos.every_nth > 0 &&
      job_index % chaos.every_nth == 0;

  {
    JournalRecord rec;
    rec.event = JobEvent::kDispatched;
    rec.job_index = job_index;
    rec.scenario_hash = scenario.hash();
    rec.attempt = attempt;
    if (inject) rec.detail = "inject=" + chaos.mode;
    std::lock_guard<std::mutex> lock(g_journal_mutex);
    const Status st = journal_.append(rec);
    if (!st.ok()) {
      *failure_class = "journal_append";
      return st;
    }
  }

  std::vector<std::string> argv = options_.worker_argv;
  argv.push_back("--scenario");
  argv.push_back(scenario.spec());
  argv.push_back("--job");
  argv.push_back(std::to_string(job_index));
  argv.push_back("--attempt");
  argv.push_back(std::to_string(attempt));
  if (inject) {
    argv.push_back("--inject");
    argv.push_back(chaos.mode);
  }
  const std::string out_path =
      options_.work_dir + "/job_" + std::to_string(job_index) + ".out";

  // An attempt that is *known* to hang gets the short chaos deadline; the
  // enforcement path (TERM, grace, KILL on expiry, classify, retry) is
  // identical.
  const std::size_t deadline =
      inject && chaos.mode == "worker_hang" ? chaos.injected_deadline_ms
                                            : options_.deadline_ms;

  // With telemetry on, hand the worker its shard path and blank out
  // VMAP_TRACE: inherited, every worker would clobber the supervisor's
  // own trace file; the shard is the only per-worker trace output.
  std::vector<std::string> env;
  if (telemetry_on_) {
    env.push_back(std::string(kShardEnv) + "=" +
                  shard_path_for_job(options_.work_dir, job_index));
    env.push_back("VMAP_TRACE=");
  }

  StatusOr<ExitStatus> exit =
      run_with_deadline(argv, out_path, deadline, env);

  Status failure;
  if (!exit.ok()) {
    *failure_class = "spawn_failure";
    failure = Status::Io("worker spawn failed").with_cause(exit.status());
  } else if (exit->deadline_killed) {
    *failure_class = "hang_timeout";
    failure = Status::Timeout("worker exceeded " + std::to_string(deadline) +
                              " ms deadline");
  } else if (exit->signaled) {
    *failure_class = "crash_signal_" + std::to_string(exit->code);
    failure = Status::Io("worker killed by signal " +
                         std::to_string(exit->code));
  } else if (exit->code != 0) {
    *failure_class = "exit_" + std::to_string(exit->code);
    failure = Status::Io("worker exited with code " +
                         std::to_string(exit->code));
  } else {
    StatusOr<std::string> output = read_file(out_path);
    if (!output.ok()) {
      *failure_class = "garbage_output";
      failure = Status::Corruption("worker output unreadable")
                    .with_cause(output.status());
    } else {
      StatusOr<JobResult> result = parse_result_output(*output);
      if (result.ok()) {
        std::remove(out_path.c_str());
        if (telemetry_on_) {
          // The job ended clean: any flight tail from an earlier failed
          // attempt is stale now, and the shard (written by the worker's
          // atexit hook before it exited) gets a journal record so the
          // artifact is traceable from the replay alone.
          std::remove(
              flight_path_for_job(options_.work_dir, job_index).c_str());
          const std::string shard =
              shard_path_for_job(options_.work_dir, job_index);
          if (std::ifstream(shard).good()) {
            JournalRecord rec;
            rec.event = JobEvent::kShardWritten;
            rec.job_index = job_index;
            rec.scenario_hash = scenario.hash();
            rec.attempt = attempt;
            rec.detail = shard;
            std::lock_guard<std::mutex> lock(g_journal_mutex);
            const Status st = journal_.append(rec);
            if (!st.ok()) return st;
          }
        }
        return result;
      }
      *failure_class = "garbage_output";
      failure = result.status();
    }
  }

  // Failed attempt: before journaling, salvage the worker's flight-
  // recorder tail out of its captured output (the crash/TERM handlers
  // dump "FLIGHT ..." lines to stderr). The latest failure's tail wins;
  // a later clean attempt deletes it again.
  if (telemetry_on_) {
    StatusOr<std::string> captured = read_file(out_path);
    if (captured.ok()) {
      const std::vector<flight::Event> tail = flight::parse_dump(*captured);
      if (!tail.empty())
        (void)write_file_atomic(
            flight_path_for_job(options_.work_dir, job_index),
            flight::format_events(tail));
    }
  }

  if (options_.verbose)
    VMAP_LOG(kWarn) << "sweep job " << job_index << " attempt " << attempt
                    << " failed (" << *failure_class
                    << "): " << failure.to_string();
  {
    JournalRecord rec;
    rec.event = JobEvent::kFailed;
    rec.job_index = job_index;
    rec.scenario_hash = scenario.hash();
    rec.attempt = attempt;
    rec.detail = *failure_class;
    std::lock_guard<std::mutex> lock(g_journal_mutex);
    const Status st = journal_.append(rec);
    if (!st.ok()) return st;
  }
  return failure;
}

Status SweepSupervisor::run_job(std::size_t job_index,
                                const Scenario& scenario, SweepRow& row) {
  RetryOptions retry;
  retry.max_attempts = options_.max_attempts;
  retry.base_backoff_ms = options_.base_backoff_ms;
  retry.backoff_multiplier = options_.backoff_multiplier;

  std::string failure_class;
  std::size_t attempt = 0;
  StatusOr<JobResult> result =
      retry_with_backoff(retry, [&]() -> StatusOr<JobResult> {
        const std::size_t k = attempt++;
        return run_attempt(job_index, scenario, k, &failure_class);
      });
  row.attempts = attempt;

  JournalRecord rec;
  rec.job_index = job_index;
  rec.scenario_hash = scenario.hash();
  rec.attempt = attempt == 0 ? 0 : attempt - 1;
  if (result.ok()) {
    row.completed = true;
    row.result = *result;
    rec.event = JobEvent::kCompleted;
    rec.detail = encode_result_payload(*result);
  } else {
    // Retries exhausted: the failure reproduced every time, so treat it as
    // deterministic, record the class, and let the sweep continue.
    row.completed = false;
    row.failure_class = failure_class;
    rec.event = JobEvent::kQuarantined;
    rec.detail = failure_class;
  }
  std::lock_guard<std::mutex> lock(g_journal_mutex);
  return journal_.append(rec);
}

StatusOr<SweepResult> SweepSupervisor::run() {
  const std::vector<Scenario> scenarios = matrix_.expand();
  if (scenarios.empty())
    return Status::InvalidArgument("scenario matrix expands to zero jobs");
  matrix_hash_ = matrix_.hash();
  const char* trace_env = std::getenv("VMAP_TRACE");
  telemetry_on_ =
      options_.telemetry == TelemetryMode::kOn ||
      (options_.telemetry == TelemetryMode::kAuto && trace_env && *trace_env);
  const std::string journal_path = options_.work_dir + "/sweep.journal";

  SweepResult result;
  result.jobs_total = scenarios.size();
  result.rows.resize(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    result.rows[i].job_index = i;
    result.rows[i].scenario = scenarios[i];
  }

  std::vector<std::size_t> pending;
  if (options_.resume) {
    StatusOr<JournalReplay> replay = replay_journal(journal_path);
    if (!replay.ok()) return replay.status();
    if (replay->matrix_hash != matrix_hash_)
      return Status::InvalidArgument(
          "cannot resume: journal was written for a different scenario "
          "matrix: " + journal_path);
    result.duplicate_terminals = replay->duplicate_terminals;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const auto completed = replay->completed.find(i);
      if (completed != replay->completed.end()) {
        if (completed->second.scenario_hash != scenarios[i].hash())
          return Status::Corruption(
              "journal completion record does not match scenario " +
              std::to_string(i) + ": " + journal_path);
        StatusOr<JobResult> parsed =
            parse_result_payload(completed->second.detail);
        if (!parsed.ok())
          return Status::Corruption(
                     "journal completion payload unparseable for job " +
                     std::to_string(i) + ": " + journal_path)
              .with_cause(parsed.status());
        result.rows[i].completed = true;
        result.rows[i].result = *parsed;
        result.rows[i].from_journal = true;
        ++result.jobs_skipped_resume;
        continue;
      }
      const auto quarantined = replay->quarantined.find(i);
      if (quarantined != replay->quarantined.end()) {
        result.rows[i].completed = false;
        result.rows[i].failure_class = quarantined->second.detail;
        result.rows[i].from_journal = true;
        ++result.jobs_skipped_resume;
        continue;
      }
      pending.push_back(i);  // fresh or in-flight at the kill: re-run
    }
    StatusOr<SweepJournal> journal =
        SweepJournal::open_append(journal_path, matrix_hash_);
    if (!journal.ok()) return journal.status();
    journal_ = std::move(*journal);
  } else {
    StatusOr<SweepJournal> journal =
        SweepJournal::create(journal_path, matrix_hash_);
    if (!journal.ok()) return journal.status();
    journal_ = std::move(*journal);
    for (std::size_t i = 0; i < scenarios.size(); ++i) pending.push_back(i);
  }

  // Dispatch: a small crew of supervisor threads, each claiming the next
  // pending job and driving it through spawn/deadline/retry/terminal-state.
  // Rows are disjoint slots, so only the journal needs a lock.
  std::atomic<std::size_t> next{0};
  const std::size_t crew =
      std::max<std::size_t>(1, std::min(options_.parallel, pending.size()));
  std::vector<Status> crew_status(crew);
  std::vector<std::thread> threads;
  threads.reserve(crew);
  for (std::size_t t = 0; t < crew; ++t) {
    threads.emplace_back([&, t]() {
      while (true) {
        const std::size_t slot = next.fetch_add(1);
        if (slot >= pending.size()) return;
        const std::size_t job = pending[slot];
        const Status st = run_job(job, scenarios[job], result.rows[job]);
        if (!st.ok()) {
          crew_status[t] = st;
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (const Status& st : crew_status)
    if (!st.ok()) return st;

  for (const SweepRow& row : result.rows) {
    if (row.completed)
      ++result.jobs_completed;
    else
      ++result.jobs_quarantined;
    result.attempts_total += row.attempts;
    if (row.attempts > 1) result.retries_total += row.attempts - 1;
  }

  // Telemetry merge: one fleet-wide Chrome trace from the per-job shards
  // plus the deterministic counter aggregates for the JSON report. Runs
  // before the reports so the aggregates section rides along.
  std::string telemetry_json;
  if (telemetry_on_) {
    std::vector<JobTelemetry> jobs;
    jobs.reserve(result.rows.size());
    for (const SweepRow& row : result.rows) {
      JobTelemetry jt;
      jt.job_index = row.job_index;
      jt.scenario = row.scenario;
      jt.status = row.completed ? "completed"
                                : "quarantined:" + row.failure_class;
      jt.shard_path = shard_path_for_job(options_.work_dir, row.job_index);
      if (!row.completed)
        jt.flight_path =
            flight_path_for_job(options_.work_dir, row.job_index);
      jobs.push_back(std::move(jt));
    }
    StatusOr<MergeOutput> merged = merge_job_telemetry(jobs);
    if (!merged.ok()) return merged.status();
    Status trace_st = write_file_atomic(
        options_.work_dir + "/sweep_trace.json", merged->trace_json);
    if (!trace_st.ok()) return trace_st;
    telemetry_json = merged->aggregates_json;
    if (options_.verbose)
      VMAP_LOG(kInfo) << "sweep telemetry: merged " << merged->shards_merged
                      << " shards (" << merged->shards_missing
                      << " missing), " << merged->flight_jobs
                      << " flight tails";
  }

  Status st = write_file_atomic(options_.work_dir + "/sweep_report.csv",
                                result.csv());
  if (!st.ok()) return st;
  st = write_file_atomic(options_.work_dir + "/sweep_report.json",
                         result.json(matrix_hash_, telemetry_json));
  if (!st.ok()) return st;
  return result;
}

}  // namespace vmap::sweep
