#pragma once
// Append-only, checksummed sweep journal.
//
// Every job state transition (dispatched / failed / completed /
// quarantined) is appended as one length-framed, FNV-1a-checksummed record
// and fsync'd, so a sweep killed with SIGKILL at any instant can be
// resumed: replay_journal() rebuilds the exact job states and `--resume`
// skips completed jobs exactly-once (their recorded result payloads feed
// the aggregate report byte-identically) while re-running in-flight ones.
//
// Durability/corruption contract (locked in by tests/sweep_journal_test):
//   * a truncated trailing record — the footprint of a crash mid-append —
//     is tolerated: replay stops there and reports the dropped bytes;
//   * any checksum mismatch, bad header, or oversized length field past
//     the header is rejected with kCorruption (bit rot must never be
//     silently replayed);
//   * duplicate terminal records for a job (possible when a kill lands
//     between a worker finishing and the supervisor's record reaching the
//     journal on a previous run) are deduplicated first-record-wins.
//
// The journal header also pins the scenario-matrix hash: resuming a
// journal against a different matrix is refused (job indices would alias).

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace vmap::sweep {

/// Job state transitions recorded in the journal.
enum class JobEvent : std::uint64_t {
  kDispatched = 1,  ///< attempt handed to a worker subprocess
  kFailed = 2,      ///< attempt ended in a classified failure
  kCompleted = 3,   ///< terminal: verified result payload in `detail`
  kQuarantined = 4, ///< terminal: failure class in `detail`, sweep went on
  kShardWritten = 5,  ///< job's telemetry shard landed; path in `detail`
};

const char* job_event_name(JobEvent event);

struct JournalRecord {
  JobEvent event = JobEvent::kDispatched;
  std::uint64_t job_index = 0;
  std::uint64_t scenario_hash = 0;
  std::uint64_t attempt = 0;
  std::string detail;  ///< payload / failure class; free text, no newlines
};

/// Appending writer. create() truncates to a fresh journal; open_append()
/// validates the existing header (magic, version, checksum, matrix hash)
/// and appends after the last valid record.
class SweepJournal {
 public:
  SweepJournal() = default;
  SweepJournal(SweepJournal&&) noexcept;
  SweepJournal& operator=(SweepJournal&&) noexcept;
  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;
  ~SweepJournal();

  static StatusOr<SweepJournal> create(const std::string& path,
                                       std::uint64_t matrix_hash);
  static StatusOr<SweepJournal> open_append(const std::string& path,
                                            std::uint64_t matrix_hash);

  /// Serializes, appends in one write, and fsyncs. Thread-safe via the
  /// caller's serialization (the supervisor holds one journal mutex).
  Status append(const JournalRecord& record);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

/// Everything replay learns from a journal.
struct JournalReplay {
  std::uint64_t matrix_hash = 0;
  std::vector<JournalRecord> records;       ///< every valid record, in order
  std::size_t dropped_tail_bytes = 0;       ///< truncated-tail tolerance
  std::size_t duplicate_terminals = 0;      ///< deduped duplicate records

  // Derived job states (terminal records deduped first-wins):
  std::map<std::uint64_t, JournalRecord> completed;    ///< by job index
  std::map<std::uint64_t, JournalRecord> quarantined;  ///< by job index
  std::set<std::uint64_t> in_flight;  ///< dispatched, no terminal record
  /// Telemetry shard paths by job index (last record wins: a re-run's
  /// shard overwrites its predecessor's file too). Informational — job
  /// state never depends on shard records.
  std::map<std::uint64_t, std::string> shard_files;
};

/// Validates and replays a journal. kIo when the file cannot be read,
/// kCorruption for a bad header or any corrupt record before the tail.
StatusOr<JournalReplay> replay_journal(const std::string& path);

}  // namespace vmap::sweep
