#include "sweep/scenario.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/hash.hpp"

namespace vmap::sweep {

namespace {

/// %.17g round-trips IEEE doubles exactly — specs must be canonical so
/// spec → Scenario → spec is the identity and hashes are stable.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

const char* pad_short_name(grid::PadArrangement a) {
  switch (a) {
    case grid::PadArrangement::kSquare: return "sq";
    case grid::PadArrangement::kTriangular: return "tri";
    case grid::PadArrangement::kHexagonal: return "hex";
  }
  return "?";
}

StatusOr<grid::PadArrangement> parse_pads(const std::string& v) {
  if (v == "square") return grid::PadArrangement::kSquare;
  if (v == "triangular") return grid::PadArrangement::kTriangular;
  if (v == "hexagonal") return grid::PadArrangement::kHexagonal;
  return Status::InvalidArgument("unknown pad arrangement: " + v);
}

bool parse_u64(const std::string& v, std::uint64_t& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(v.c_str(), &end, 10);
  return end && *end == '\0';
}

bool parse_f64(const std::string& v, double& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  out = std::strtod(v.c_str(), &end);
  return end && *end == '\0';
}

}  // namespace

std::string Scenario::spec() const {
  std::ostringstream s;
  s << "pads=" << grid::pad_arrangement_name(pads)
    << ";dens=" << fmt_double(density)
    << ";layers=" << (two_layer ? 2 : 1)
    << ";cores=" << cores_x << "x" << cores_y
    << ";vofs=" << fmt_double(vdd_offset)
    << ";wl=" << workload
    << ";seed=" << seed
    << ";train=" << train_maps
    << ";test=" << test_maps
    << ";warmup=" << warmup_steps
    << ";calib=" << calibration_steps;
  return s.str();
}

std::string Scenario::id() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s-d%.2f-L%d-%zux%zu-v%+.3f-%s",
                pad_short_name(pads), density, two_layer ? 2 : 1, cores_x,
                cores_y, vdd_offset, workload.c_str());
  return buf;
}

std::uint64_t Scenario::hash() const {
  const std::string s = spec();
  return fnv1a64(s.data(), s.size());
}

core::ExperimentSetup Scenario::setup() const {
  // Scaled from small_setup()'s 16x16-tiles-per-core footprint so every
  // core count keeps room for the 30-block template plus BA channels.
  core::ExperimentSetup s = core::small_setup();
  const auto dim = [&](std::size_t cores) {
    return static_cast<std::size_t>(
        std::lround(16.0 * static_cast<double>(cores) * density));
  };
  s.grid.nx = dim(cores_x);
  s.grid.ny = dim(cores_y);
  s.grid.pad_spacing = 8;
  s.grid.pad_arrangement = pads;
  s.grid.two_layer = two_layer;
  s.grid.vdd = 1.0 + vdd_offset;
  s.floorplan.cores_x = cores_x;
  s.floorplan.cores_y = cores_y;
  s.floorplan.core_margin = 1;
  s.data.seed = seed;
  s.data.train_maps_per_benchmark = train_maps;
  s.data.test_maps_per_benchmark = test_maps;
  s.data.warmup_steps = warmup_steps;
  s.data.calibration_steps = calibration_steps;
  return s;
}

StatusOr<Scenario> Scenario::parse(const std::string& spec) {
  Scenario sc;
  std::uint32_t seen = 0;  // bit per required key
  std::istringstream in(spec);
  std::string field;
  while (std::getline(in, field, ';')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos)
      return Status::InvalidArgument("scenario field without '=': " + field);
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    std::uint64_t u = 0;
    double f = 0.0;
    if (key == "pads") {
      auto pads = parse_pads(value);
      if (!pads.ok()) return pads.status();
      sc.pads = *pads;
      seen |= 1u << 0;
    } else if (key == "dens") {
      if (!parse_f64(value, f) || f <= 0.0)
        return Status::InvalidArgument("bad density: " + value);
      sc.density = f;
      seen |= 1u << 1;
    } else if (key == "layers") {
      if (!parse_u64(value, u) || (u != 1 && u != 2))
        return Status::InvalidArgument("bad layer count: " + value);
      sc.two_layer = u == 2;
      seen |= 1u << 2;
    } else if (key == "cores") {
      const auto x = value.find('x');
      std::uint64_t cx = 0, cy = 0;
      if (x == std::string::npos || !parse_u64(value.substr(0, x), cx) ||
          !parse_u64(value.substr(x + 1), cy) || cx == 0 || cy == 0)
        return Status::InvalidArgument("bad core grid: " + value);
      sc.cores_x = static_cast<std::size_t>(cx);
      sc.cores_y = static_cast<std::size_t>(cy);
      seen |= 1u << 3;
    } else if (key == "vofs") {
      if (!parse_f64(value, f))
        return Status::InvalidArgument("bad vdd offset: " + value);
      sc.vdd_offset = f;
      seen |= 1u << 4;
    } else if (key == "wl") {
      if (value.empty())
        return Status::InvalidArgument("empty workload archetype");
      sc.workload = value;
      seen |= 1u << 5;
    } else if (key == "seed") {
      if (!parse_u64(value, u))
        return Status::InvalidArgument("bad seed: " + value);
      sc.seed = u;
      seen |= 1u << 6;
    } else if (key == "train") {
      if (!parse_u64(value, u) || u == 0)
        return Status::InvalidArgument("bad train map count: " + value);
      sc.train_maps = static_cast<std::size_t>(u);
      seen |= 1u << 7;
    } else if (key == "test") {
      if (!parse_u64(value, u) || u == 0)
        return Status::InvalidArgument("bad test map count: " + value);
      sc.test_maps = static_cast<std::size_t>(u);
      seen |= 1u << 8;
    } else if (key == "warmup") {
      if (!parse_u64(value, u))
        return Status::InvalidArgument("bad warmup steps: " + value);
      sc.warmup_steps = static_cast<std::size_t>(u);
      seen |= 1u << 9;
    } else if (key == "calib") {
      if (!parse_u64(value, u) || u == 0)
        return Status::InvalidArgument("bad calibration steps: " + value);
      sc.calibration_steps = static_cast<std::size_t>(u);
      seen |= 1u << 10;
    } else {
      return Status::InvalidArgument("unknown scenario key: " + key);
    }
  }
  if (seen != (1u << 11) - 1)
    return Status::InvalidArgument("scenario spec missing fields: " + spec);
  return sc;
}

std::vector<Scenario> ScenarioMatrix::expand() const {
  std::vector<Scenario> out;
  for (grid::PadArrangement pads : pad_arrangements)
    for (double density : densities)
      for (bool two_layer : layer_modes)
        for (const auto& [cx, cy] : core_grids)
          for (double vofs : vdd_offsets)
            for (const std::string& wl : workloads) {
              Scenario sc;
              sc.pads = pads;
              sc.density = density;
              sc.two_layer = two_layer;
              sc.cores_x = cx;
              sc.cores_y = cy;
              sc.vdd_offset = vofs;
              sc.workload = wl;
              sc.seed = seed;
              sc.train_maps = train_maps;
              sc.test_maps = test_maps;
              sc.warmup_steps = warmup_steps;
              sc.calibration_steps = calibration_steps;
              out.push_back(std::move(sc));
            }
  return out;
}

std::uint64_t ScenarioMatrix::hash() const {
  std::uint64_t h = kFnv1a64Seed;
  for (const Scenario& sc : expand()) {
    const std::string s = sc.spec();
    h = fnv1a64(s.data(), s.size(), h);
  }
  return h;
}

std::string encode_result_payload(const JobResult& result) {
  std::ostringstream s;
  s << "sensors=" << result.sensors << " placement=" << fmt_hex(result.placement)
    << " te=" << fmt_double(result.te)
    << " rel_err=" << fmt_double(result.rel_err);
  return s.str();
}

StatusOr<JobResult> parse_result_payload(const std::string& payload) {
  JobResult r;
  std::uint32_t seen = 0;
  std::istringstream in(payload);
  std::string field;
  while (in >> field) {
    const auto eq = field.find('=');
    if (eq == std::string::npos)
      return Status::Corruption("result field without '=': " + field);
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "sensors") {
      std::uint64_t u = 0;
      if (!parse_u64(value, u))
        return Status::Corruption("bad sensor count: " + value);
      r.sensors = static_cast<std::size_t>(u);
      seen |= 1u << 0;
    } else if (key == "placement") {
      char* end = nullptr;
      r.placement = std::strtoull(value.c_str(), &end, 16);
      if (!end || *end != '\0' || value.size() != 16)
        return Status::Corruption("bad placement hash: " + value);
      seen |= 1u << 1;
    } else if (key == "te") {
      double f = 0.0;
      if (!parse_f64(value, f))
        return Status::Corruption("bad te: " + value);
      r.te = f;
      seen |= 1u << 2;
    } else if (key == "rel_err") {
      double f = 0.0;
      if (!parse_f64(value, f))
        return Status::Corruption("bad rel_err: " + value);
      r.rel_err = f;
      seen |= 1u << 3;
    } else {
      return Status::Corruption("unknown result key: " + key);
    }
  }
  if (seen != (1u << 4) - 1)
    return Status::Corruption("result payload missing fields: " + payload);
  return r;
}

std::string encode_result_line(const JobResult& result) {
  const std::string payload = encode_result_payload(result);
  return "RESULT " + payload + " " +
         fmt_hex(fnv1a64(payload.data(), payload.size()));
}

StatusOr<JobResult> parse_result_output(const std::string& output) {
  // The worker's stdout/stderr share one file; take the *last* RESULT line
  // so stray diagnostics cannot shadow the answer.
  std::string line, result_line;
  std::istringstream in(output);
  while (std::getline(in, line)) {
    if (line.rfind("RESULT ", 0) == 0) result_line = line;
  }
  if (result_line.empty())
    return Status::Corruption("worker output carries no RESULT line");
  const auto checksum_at = result_line.find_last_of(' ');
  if (checksum_at == std::string::npos || checksum_at <= 7)
    return Status::Corruption("malformed RESULT line: " + result_line);
  const std::string payload = result_line.substr(7, checksum_at - 7);
  const std::string checksum_hex = result_line.substr(checksum_at + 1);
  char* end = nullptr;
  const std::uint64_t claimed =
      std::strtoull(checksum_hex.c_str(), &end, 16);
  if (!end || *end != '\0' || checksum_hex.size() != 16)
    return Status::Corruption("malformed RESULT checksum: " + result_line);
  if (fnv1a64(payload.data(), payload.size()) != claimed)
    return Status::Corruption("RESULT checksum mismatch: " + result_line);
  return parse_result_payload(payload);
}

}  // namespace vmap::sweep
