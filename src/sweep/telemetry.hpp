#pragma once
// Cross-process telemetry for the sweep fleet: per-worker shards, the
// supervisor-side merge, and per-axis metric aggregation.
//
// Each sweep_worker writes one shard file — its Chrome trace (captured
// in-process, no output path) plus a metrics snapshot and its job
// identity — via atomic tmp+fsync+rename, to the path the supervisor
// hands down in the VMAP_TELEMETRY_SHARD environment variable. The
// supervisor, after the sweep, merges every job's shard into ONE Chrome
// trace: worker pids are remapped to job_index + 2 (pid 1 is the
// supervisor's own row), each job gets process metadata rows carrying
// its scenario spec, attempt number, and outcome, and quarantined jobs
// carry their flight-recorder tail as instant events. The merge iterates
// jobs in canonical order and serializes with fixed formatting, so the
// merged document is byte-stable for a given set of shard/flight files —
// shard discovery order can never leak into the bytes.
//
// Worker metrics fold into the sweep report as per-axis COUNTER
// aggregates only: counters are deterministic per scenario (workers are
// single-threaded and the clean attempt's shard always wins), so the
// aggregate section preserves the report's byte-identity across
// uninterrupted / killed+resumed / chaos runs. Gauges and time
// histograms stay in the shards, where wall-clock nondeterminism is
// expected.

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/scenario.hpp"
#include "util/status.hpp"

namespace vmap::sweep {

/// Environment variable naming the shard file a worker must write.
inline constexpr const char* kShardEnv = "VMAP_TELEMETRY_SHARD";

// --- worker side ------------------------------------------------------

/// When VMAP_TELEMETRY_SHARD is set, switches tracing into capture mode
/// (spans collected, no trace file of its own) and registers an atexit
/// hook that writes the shard atomically. Returns true when shard
/// telemetry is now active. Call once, early in main().
bool init_worker_telemetry_from_env(std::size_t job, std::size_t attempt,
                                    const std::string& scenario_spec);

/// Writes the shard immediately (the atexit hook calls this). No-op
/// returning Ok when init never armed a shard path.
Status write_telemetry_shard();

// --- supervisor side --------------------------------------------------

/// One job's telemetry inputs, in canonical job order.
struct JobTelemetry {
  std::size_t job_index = 0;
  Scenario scenario;
  std::string status;       ///< "completed" or "quarantined:<class>"
  std::string shard_path;   ///< may not exist (crashed-only jobs)
  std::string flight_path;  ///< may not exist (non-quarantined jobs)
};

struct MergeOutput {
  std::string trace_json;       ///< the merged Chrome trace document
  std::string aggregates_json;  ///< "telemetry" section for the report
  std::size_t shards_merged = 0;
  std::size_t shards_missing = 0;  ///< absent or unparseable shard files
  std::size_t flight_jobs = 0;     ///< jobs that carried a flight tail
};

/// Merges every job's shard and flight tail. kIo/kCorruption only on
/// harness-level failures; a missing or corrupt shard degrades to a
/// counted gap (the sweep itself already classified the job).
StatusOr<MergeOutput> merge_job_telemetry(
    const std::vector<JobTelemetry>& jobs);

/// Canonical per-job artifact paths under a sweep work dir.
std::string shard_path_for_job(const std::string& work_dir, std::size_t job);
std::string flight_path_for_job(const std::string& work_dir, std::size_t job);

}  // namespace vmap::sweep
