#!/usr/bin/env python3
"""Summarize a VMAP_TRACE Chrome-trace JSON: top spans by self-time.

Usage:
  tools/trace_summary.py trace.json [--top 20] [--per-job]

Self-time of a span is its duration minus the durations of its direct
children (parent links are carried in each event's args, so children on
pool workers are attributed to the span that submitted them). Spans are
aggregated by name; the table shows call count, total/self wall time,
and the mean span duration — the first place to look when a run is
slower than its baseline.

Works on both single-process traces (one bench run) and the merged
multi-process traces the sweep supervisor writes (sweep_trace.json):
span ids are only unique within one process, so parent/child links are
resolved per pid. --per-job adds a per-worker critical-path table for
merged traces — scenario, outcome, traced wall time, and each job's
dominant self-time spans.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_summary: cannot read {path}: {e}", file=sys.stderr)
        return None
    return doc.get("traceEvents", [])


def span_stats(events, key_of):
    """Aggregates X events into {key: {count,total,self}} with per-pid
    parent links (span ids collide across merged processes)."""
    child_us = defaultdict(float)
    for e in events:
        parent = e.get("args", {}).get("parent", 0)
        if parent:
            child_us[(e.get("pid", 0), parent)] += float(e.get("dur", 0.0))
    stats = defaultdict(lambda: {"count": 0, "total": 0.0, "self": 0.0})
    for e in events:
        dur = float(e.get("dur", 0.0))
        span_id = e.get("args", {}).get("id", 0)
        s = stats[key_of(e)]
        s["count"] += 1
        s["total"] += dur
        s["self"] += max(
            0.0, dur - child_us.get((e.get("pid", 0), span_id), 0.0))
    return stats


def job_metadata(all_events):
    """Per-pid job rows from the merge's metadata events. Empty for a
    plain single-process trace (no job process_name rows)."""
    jobs = {}
    for e in all_events:
        pid = e.get("pid", 0)
        name = e.get("name", "")
        args = e.get("args", {})
        if e.get("ph") == "M" and name == "process_name":
            label = args.get("name", "")
            if label.startswith("job_"):
                jobs.setdefault(pid, {})["label"] = label
        elif e.get("ph") == "M" and name == "process_labels":
            jobs.setdefault(pid, {})["status"] = args.get("labels", "")
        elif e.get("ph") == "i" and name == "job_meta":
            jobs.setdefault(pid, {})["scenario"] = args.get("scenario", "")
    return {pid: meta for pid, meta in jobs.items() if "label" in meta}


def print_summary(events, top):
    stats = span_stats(events, lambda e: e.get("name", "?"))
    threads = {(e.get("pid", 0), e.get("tid", 0)) for e in events}
    wall_us = max(float(e.get("ts", 0)) + float(e.get("dur", 0))
                  for e in events)
    print(f"{len(events)} spans, {len(stats)} distinct names, "
          f"{len(threads)} timeline rows, {wall_us / 1e6:.3f} s traced")
    print()
    header = f"{'span':<36} {'count':>8} {'self(ms)':>12} " \
             f"{'total(ms)':>12} {'mean(us)':>10} {'self%':>6}"
    print(header)
    print("-" * len(header))
    total_self = sum(s["self"] for s in stats.values()) or 1.0
    ranked = sorted(stats.items(), key=lambda kv: -kv[1]["self"])
    for name, s in ranked[:top]:
        mean_us = s["total"] / s["count"]
        print(f"{name:<36} {s['count']:>8} {s['self'] / 1e3:>12.2f} "
              f"{s['total'] / 1e3:>12.2f} {mean_us:>10.1f} "
              f"{100.0 * s['self'] / total_self:>5.1f}%")
    if len(ranked) > top:
        rest = sum(s["self"] for _, s in ranked[top:])
        print(f"{'(other)':<36} {'':>8} {rest / 1e3:>12.2f}")


def print_backends(events):
    """Model-backend section: 'backend.sel.<name>' / 'backend.pred.<name>'
    spans emitted by the placement pipeline, aggregated per backend so a
    fit's time splits into selection vs prediction at a glance. Silent when
    the trace has no backend spans (non-pipeline workloads)."""
    backend = [e for e in events
               if e.get("name", "").startswith("backend.")]
    if not backend:
        return
    stats = span_stats(backend, lambda e: e.get("name", "?"))
    print()
    header = f"{'model backend':<36} {'count':>8} {'total(ms)':>12} " \
             f"{'mean(ms)':>10}"
    print(header)
    print("-" * len(header))
    for name, s in sorted(stats.items(),
                          key=lambda kv: -kv[1]["total"]):
        print(f"{name:<36} {s['count']:>8} {s['total'] / 1e3:>12.2f} "
              f"{s['total'] / s['count'] / 1e3:>10.2f}")


def print_per_job(all_events, events, paths):
    jobs = job_metadata(all_events)
    if not jobs:
        print("trace_summary: --per-job needs a merged sweep trace "
              "(sweep_trace.json) — this trace has no job process rows; "
              "run without --per-job for the plain span summary",
              file=sys.stderr)
        return 2
    stats = span_stats(events, lambda e: (e.get("pid", 0),
                                          e.get("name", "?")))
    by_pid = defaultdict(list)
    for (pid, name), s in stats.items():
        by_pid[pid].append((name, s))
    flights = defaultdict(int)
    for e in all_events:
        if e.get("ph") == "i" and e.get("name", "").startswith("flight:"):
            flights[e.get("pid", 0)] += 1

    print()
    header = f"{'job':<28} {'status':<26} {'spans':>7} {'wall(ms)':>10} " \
             f"{'critical path (top self-time spans)'}"
    print(header)
    print("-" * len(header))
    for pid in sorted(jobs):
        meta = jobs[pid]
        spans = by_pid.get(pid, [])
        job_events = [e for e in events if e.get("pid", 0) == pid]
        wall_ms = 0.0
        if job_events:
            hi = max(float(e.get("ts", 0)) + float(e.get("dur", 0))
                     for e in job_events)
            lo = min(float(e.get("ts", 0)) for e in job_events)
            wall_ms = (hi - lo) / 1e3
        ranked = sorted(spans, key=lambda kv: -kv[1]["self"])[:paths]
        chain = " > ".join(
            f"{name} {s['self'] / 1e3:.1f}ms" for name, s in ranked)
        if flights.get(pid):
            chain += f"  [flight tail: {flights[pid]} events]"
        count = sum(s["count"] for _, s in spans)
        print(f"{meta.get('label', '?'):<28} "
              f"{meta.get('status', '?'):<26} {count:>7} {wall_ms:>10.2f} "
              f"{chain}")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="top spans by self-time from a Chrome trace")
    parser.add_argument("trace", help="trace JSON written via VMAP_TRACE, "
                        "or a merged sweep_trace.json")
    parser.add_argument("--top", type=int, default=20)
    parser.add_argument("--per-job", action="store_true",
                        help="per-worker critical-path table "
                             "(merged sweep traces only)")
    parser.add_argument("--paths", type=int, default=3,
                        help="spans per job in the --per-job chain")
    args = parser.parse_args()

    all_events = load_events(args.trace)
    if all_events is None:
        return 2
    events = [e for e in all_events if e.get("ph") == "X"]
    if not events:
        if args.per_job and job_metadata(all_events):
            # A merged trace where every worker crashed before tracing:
            # still a valid per-job view (flight tails, zero spans).
            return print_per_job(all_events, events, args.paths)
        print("trace_summary: no complete ('X') events in the trace")
        return 0

    print_summary(events, args.top)
    print_backends(events)
    if args.per_job:
        return print_per_job(all_events, events, args.paths)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # `trace_summary.py ... | head` is fine
        sys.exit(0)
