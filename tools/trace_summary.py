#!/usr/bin/env python3
"""Summarize a VMAP_TRACE Chrome-trace JSON: top spans by self-time.

Usage:
  tools/trace_summary.py trace.json [--top 20]

Self-time of a span is its duration minus the durations of its direct
children (parent links are carried in each event's args, so children on
pool workers are attributed to the span that submitted them). Spans are
aggregated by name; the table shows call count, total/self wall time,
and the mean span duration — the first place to look when a run is
slower than its baseline.
"""

import argparse
import json
import sys
from collections import defaultdict


def main():
    parser = argparse.ArgumentParser(
        description="top spans by self-time from a Chrome trace")
    parser.add_argument("trace", help="trace JSON written via VMAP_TRACE")
    parser.add_argument("--top", type=int, default=20)
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_summary: cannot read {args.trace}: {e}",
              file=sys.stderr)
        return 2

    events = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    if not events:
        print("trace_summary: no complete ('X') events in the trace")
        return 0

    # Children charge their duration against the parent's self-time.
    child_us = defaultdict(float)
    for e in events:
        parent = e.get("args", {}).get("parent", 0)
        if parent:
            child_us[parent] += float(e.get("dur", 0.0))

    stats = defaultdict(lambda: {"count": 0, "total": 0.0, "self": 0.0})
    threads = set()
    for e in events:
        name = e.get("name", "?")
        dur = float(e.get("dur", 0.0))
        span_id = e.get("args", {}).get("id", 0)
        s = stats[name]
        s["count"] += 1
        s["total"] += dur
        s["self"] += max(0.0, dur - child_us.get(span_id, 0.0))
        threads.add(e.get("tid", 0))

    wall_us = max(float(e.get("ts", 0)) + float(e.get("dur", 0))
                  for e in events)
    print(f"{len(events)} spans, {len(stats)} distinct names, "
          f"{len(threads)} timeline rows, {wall_us / 1e6:.3f} s traced")
    print()
    header = f"{'span':<36} {'count':>8} {'self(ms)':>12} " \
             f"{'total(ms)':>12} {'mean(us)':>10} {'self%':>6}"
    print(header)
    print("-" * len(header))
    total_self = sum(s["self"] for s in stats.values()) or 1.0
    ranked = sorted(stats.items(), key=lambda kv: -kv[1]["self"])
    for name, s in ranked[: args.top]:
        mean_us = s["total"] / s["count"]
        print(f"{name:<36} {s['count']:>8} {s['self'] / 1e3:>12.2f} "
              f"{s['total'] / 1e3:>12.2f} {mean_us:>10.1f} "
              f"{100.0 * s['self'] / total_self:>5.1f}%")
    if len(ranked) > args.top:
        rest = sum(s["self"] for _, s in ranked[args.top:])
        print(f"{'(other)':<36} {'':>8} {rest / 1e3:>12.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
