#!/usr/bin/env python3
"""Gate a bench run report against its checked-in baseline.

Usage:
  tools/perf_gate.py --baseline bench/baselines/perf_suite.json \
                     --current perf_report.json [--tolerance 0.15]

Two kinds of checks, matching what write_report() emits:

* ``scalars`` are key correctness results (error rates, sensor counts,
  bit-identity flags). They are compared for exact equality — the C++
  side serializes them with %.17g, which round-trips IEEE doubles, so
  any drift at all is a real numerical change and fails the gate.
  Scalars whose name matches a ``--fuzzy-scalar`` glob (repeatable) are
  instead tolerance-gated: |actual - expected| <= fuzzy-atol +
  fuzzy-rtol * |expected|. Use this for results that are legitimately
  run-to-run sensitive (e.g. iterative-solver outputs under different
  thread counts) while everything else stays byte-exact.

* ``timings_ms`` are wall-clock measurements. Raw wall time is
  machine-dependent, so each report carries ``calibration_ms`` (a fixed
  single-threaded arithmetic workload); the gate compares
  wall/calibration ratios and fails on a relative regression beyond
  --tolerance (default 15%). Speedups never fail. Timings whose baseline
  wall is under --min-wall-ms (default 20) are reported but not gated:
  at that scale scheduler noise dominates.

The resilience section is also watched: a run that needed retries,
fallbacks, or recollections where the baseline was clean fails the gate
(degraded runs must not silently become the new normal).

Exit status: 0 = within bounds, 1 = regression, 2 = usage/IO error.
"""

import argparse
import fnmatch
import json
import os
import sys


def regen_hint(baseline_path):
    """How to (re)create a baseline file, derived from its own name."""
    bench = os.path.splitext(os.path.basename(baseline_path))[0]
    return (f"  to regenerate it, run the bench with --report and commit "
            f"the result:\n"
            f"    build/bench/{bench} --quick --report {baseline_path}\n"
            f"  (see bench/baselines/README.md; the gate compares the "
            f"committed\n   baseline against each CI run's fresh report)")


def load(path, role, baseline_path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        if role == "baseline":
            print(f"perf_gate: baseline file does not exist: {path}\n"
                  f"{regen_hint(baseline_path)}", file=sys.stderr)
        else:
            print(f"perf_gate: current-run report does not exist: {path}\n"
                  f"  the bench probably failed before writing --report; "
                  f"re-run it with\n"
                  f"    --report {path}\n"
                  f"  and check its own output for the failure.",
                  file=sys.stderr)
        sys.exit(2)
    except OSError as e:
        print(f"perf_gate: cannot read {role} file {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"perf_gate: {role} file {path} is not valid JSON "
              f"(truncated or hand-edited?): {e}\n{regen_hint(baseline_path)}",
              file=sys.stderr)
        sys.exit(2)


def as_pairs(obj, section, role, path, baseline_path):
    if section not in obj:
        print(f"perf_gate: {role} file {path} has no \"{section}\" key — "
              f"it does not look like a write_report() artifact "
              f"(schema {obj.get('schema', 'absent')}).\n"
              f"{regen_hint(baseline_path)}", file=sys.stderr)
        sys.exit(2)
    pairs = obj[section]
    if not isinstance(pairs, dict):
        print(f"perf_gate: \"{section}\" in {path} is not an object\n"
              f"{regen_hint(baseline_path)}", file=sys.stderr)
        sys.exit(2)
    return pairs


def main():
    parser = argparse.ArgumentParser(
        description="compare a bench --report JSON against its baseline")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative wall-time regression "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--min-wall-ms", type=float, default=20.0,
                        help="baseline timings below this are not gated")
    parser.add_argument("--fuzzy-scalar", action="append", default=[],
                        metavar="GLOB",
                        help="scalar-name glob gated with a tolerance "
                             "instead of byte-exact equality (repeatable)")
    parser.add_argument("--fuzzy-rtol", type=float, default=0.10,
                        help="relative tolerance for --fuzzy-scalar matches "
                             "(default 0.10)")
    parser.add_argument("--fuzzy-atol", type=float, default=1e-6,
                        help="absolute tolerance for --fuzzy-scalar matches "
                             "(default 1e-6)")
    args = parser.parse_args()

    base = load(args.baseline, "baseline", args.baseline)
    cur = load(args.current, "current-run", args.baseline)
    failures = []

    bench = cur.get("bench", "?")
    if base.get("bench") != cur.get("bench"):
        failures.append(
            f"bench name mismatch: baseline={base.get('bench')} "
            f"current={cur.get('bench')}")

    # --- correctness scalars: exact equality --------------------------
    base_scalars = as_pairs(base, "scalars", "baseline", args.baseline,
                            args.baseline)
    cur_scalars = as_pairs(cur, "scalars", "current-run", args.current,
                           args.baseline)
    fuzzy_count = 0
    for name, expected in sorted(base_scalars.items()):
        if name not in cur_scalars:
            failures.append(f"scalar missing from current run: {name}")
            continue
        actual = cur_scalars[name]
        fuzzy = any(fnmatch.fnmatchcase(name, g) for g in args.fuzzy_scalar)
        if fuzzy:
            fuzzy_count += 1
            try:
                a, e = float(actual), float(expected)
            except (TypeError, ValueError):
                failures.append(
                    f"fuzzy scalar {name} is not numeric (baseline "
                    f"{expected!r}, current {actual!r})")
                continue
            bound = args.fuzzy_atol + args.fuzzy_rtol * abs(e)
            if abs(a - e) > bound:
                failures.append(
                    f"fuzzy scalar drift: {name} = {a!r}, baseline {e!r} "
                    f"(|diff| {abs(a - e):.3g} > {bound:.3g})")
        elif actual != expected:
            failures.append(
                f"scalar drift: {name} = {actual!r}, baseline {expected!r}")
    for name in sorted(set(cur_scalars) - set(base_scalars)):
        # New scalars are fine (the next baseline refresh picks them up)
        # but say so, to keep additions visible in CI logs.
        print(f"note: scalar not in baseline (ignored): {name}")

    # --- timings: calibration-normalized tolerance --------------------
    try:
        base_cal = float(base.get("calibration_ms", 0.0))
        cur_cal = float(cur.get("calibration_ms", 0.0))
    except (TypeError, ValueError):
        base_cal = cur_cal = 0.0
    if base_cal <= 0.0 or cur_cal <= 0.0:
        failures.append(
            f"missing/invalid calibration_ms in "
            f"{args.baseline if base_cal <= 0.0 else args.current} — "
            f"cannot normalize timings; regenerate the report "
            f"(write_report() always emits it)")
    else:
        speed = cur_cal / base_cal  # >1 = this machine is slower
        print(f"[{bench}] calibration: baseline {base_cal:.1f} ms, "
              f"current {cur_cal:.1f} ms (machine speed ratio {speed:.2f}x)")
        base_timings = as_pairs(base, "timings_ms", "baseline",
                                args.baseline, args.baseline)
        cur_timings = as_pairs(cur, "timings_ms", "current-run",
                               args.current, args.baseline)
        for name, base_ms in sorted(base_timings.items()):
            if name not in cur_timings:
                failures.append(f"timing missing from current run: {name}")
                continue
            try:
                cur_ms = float(cur_timings[name])
                base_ms = float(base_ms)
            except (TypeError, ValueError):
                failures.append(
                    f"timing {name} is not numeric (baseline "
                    f"{base_ms!r}, current {cur_timings[name]!r})")
                continue
            if base_ms < args.min_wall_ms:
                print(f"  {name}: {cur_ms:.1f} ms (baseline {base_ms:.1f} ms"
                      " — below gating floor, not checked)")
                continue
            ratio = (cur_ms / cur_cal) / (base_ms / base_cal)
            verdict = "ok"
            if ratio > 1.0 + args.tolerance:
                verdict = "REGRESSION"
                failures.append(
                    f"timing regression: {name} normalized ratio "
                    f"{ratio:.3f} > {1.0 + args.tolerance:.3f} "
                    f"({cur_ms:.1f} ms vs baseline {base_ms:.1f} ms)")
            print(f"  {name}: {cur_ms:.1f} ms vs {base_ms:.1f} ms "
                  f"(normalized {ratio:.2f}x) {verdict}")

    # --- resilience: no new degradation -------------------------------
    base_res = base.get("resilience", {})
    cur_res = cur.get("resilience", {})
    if base_res.get("clean", True) and not cur_res.get("clean", True):
        events = cur_res.get("events", [])
        failures.append(
            f"resilience degraded: baseline was clean, current run logged "
            f"{len(events)} event(s): " +
            "; ".join(e.get("detail", "?") for e in events[:3]))

    if failures:
        print(f"\nperf_gate FAILED for {bench}:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    exact = len(base_scalars) - fuzzy_count
    fuzzy_note = (f" ({fuzzy_count} tolerance-gated)" if fuzzy_count else "")
    print(f"\nperf_gate OK for {bench}: "
          f"{exact} scalars identical{fuzzy_note}, timings within "
          f"{args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
