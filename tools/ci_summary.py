#!/usr/bin/env python3
"""Render a CI job's results as a GitHub step-summary markdown table.

Usage:
  tools/ci_summary.py --title "build-test (gcc, Release)" \
      [--ctest-log ctest.log] \
      [--report report.json ...] [--baselines-dir bench/baselines] \
      >> "$GITHUB_STEP_SUMMARY"

Three sections, each emitted only when its input is present:

* ``--ctest-log``: the tier-1 test tally, parsed from ctest's
  "N% tests passed, X tests failed out of Y" trailer (plus the names of
  any failed tests).
* ``--report`` (repeatable): one row per bench timing — wall time, the
  checked-in baseline's wall time, and the calibration-normalized ratio
  (wall/calibration vs baseline wall/calibration, the same number
  tools/perf_gate.py gates on). Baselines are looked up as
  <baselines-dir>/<bench>.json; a missing baseline just drops the
  comparison columns. Report tags (backend names etc.) are shown next
  to the bench name so ablation rows are self-describing.

Always exits 0 — the summary must never fail a job; gating is
perf_gate's business. Unreadable inputs degrade to a note in the output.
"""

import argparse
import json
import os
import re
import sys


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"> :warning: cannot read `{path}`: {e}")
        print()
        return None


def ctest_section(path):
    try:
        with open(path) as f:
            log = f.read()
    except OSError as e:
        print(f"> :warning: cannot read ctest log `{path}`: {e}")
        print()
        return
    m = re.search(r"(\d+)% tests passed, (\d+) tests failed out of (\d+)",
                  log)
    if not m:
        print(f"> :warning: no ctest tally found in `{path}`")
        print()
        return
    pct, failed, total = m.group(1), int(m.group(2)), int(m.group(3))
    passed = total - failed
    icon = ":white_check_mark:" if failed == 0 else ":x:"
    print(f"**Tier-1 tests:** {icon} {passed}/{total} passed ({pct}%)")
    if failed:
        names = re.findall(r"\*\*\*Failed.*?- (\S+)", log) or \
            re.findall(r"\d+ - (\S+) \(Failed\)", log)
        if names:
            print()
            for n in names:
                print(f"- :x: `{n}`")
    print()


def fmt_ms(ms):
    return f"{ms / 1e3:.2f} s" if ms >= 1e3 else f"{ms:.1f} ms"


def tags_of(report):
    tags = report.get("tags", {})
    if not isinstance(tags, dict) or not tags:
        return ""
    return " " + " ".join(f"`{k}={v}`" for k, v in sorted(tags.items()))


def report_section(path, baselines_dir):
    report = load_json(path)
    if report is None:
        return
    bench = report.get("bench", os.path.basename(path))
    base = None
    base_path = os.path.join(baselines_dir, f"{bench}.json")
    if os.path.exists(base_path):
        base = load_json(base_path)

    print(f"**Bench `{bench}`**{tags_of(report)}")
    print()
    cal = float(report.get("calibration_ms", 0.0) or 0.0)
    base_cal = float((base or {}).get("calibration_ms", 0.0) or 0.0)
    if base_cal > 0 and cal > 0:
        print(f"calibration {cal:.1f} ms vs baseline {base_cal:.1f} ms "
              f"(machine speed ratio {cal / base_cal:.2f}x)")
        print()

    timings = report.get("timings_ms", {})
    if not isinstance(timings, dict) or not timings:
        print("_no timings in report_")
        print()
        return
    base_timings = (base or {}).get("timings_ms", {})
    if not isinstance(base_timings, dict):
        base_timings = {}

    have_base = base_cal > 0 and cal > 0 and base_timings
    if have_base:
        print("| timing | wall | baseline | normalized |")
        print("|---|---:|---:|---:|")
    else:
        print("| timing | wall |")
        print("|---|---:|")
    for name, ms in timings.items():
        try:
            ms = float(ms)
        except (TypeError, ValueError):
            continue
        if have_base and name in base_timings:
            base_ms = float(base_timings[name])
            ratio = ((ms / cal) / (base_ms / base_cal)
                     if base_ms > 0 else float("nan"))
            print(f"| `{name}` | {fmt_ms(ms)} | {fmt_ms(base_ms)} "
                  f"| {ratio:.2f}x |")
        elif have_base:
            print(f"| `{name}` | {fmt_ms(ms)} | — | — |")
        else:
            print(f"| `{name}` | {fmt_ms(ms)} |")
    print()

    res = report.get("resilience", {})
    if isinstance(res, dict) and not res.get("clean", True):
        events = res.get("events", [])
        print(f"> :warning: resilience: {len(events)} event(s) — "
              f"{res.get('retries', 0)} retries, "
              f"{res.get('fallbacks', 0)} fallbacks, "
              f"{res.get('recollects', 0)} recollects")
        print()


def main():
    parser = argparse.ArgumentParser(
        description="markdown step summary from ctest logs and bench "
                    "reports")
    parser.add_argument("--title", default="")
    parser.add_argument("--ctest-log")
    parser.add_argument("--report", action="append", default=[])
    parser.add_argument("--baselines-dir", default="bench/baselines")
    args = parser.parse_args()

    if args.title:
        print(f"### {args.title}")
        print()
    if args.ctest_log:
        ctest_section(args.ctest_log)
    for path in args.report:
        report_section(path, args.baselines_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
