// Sweep worker subprocess: runs exactly one scenario end-to-end.
//
// The supervisor fork/execs one of these per job attempt, so anything that
// goes wrong inside — a solver segfault, an OOM kill, a runaway solve — is
// contained in this process. The contract with the supervisor is narrow:
//   * the scenario arrives as a canonical spec string (--scenario), and
//     every input is derived from it — the worker shares no state with the
//     supervisor beyond that string;
//   * on success the worker prints one self-checksummed line,
//     "RESULT <payload> <fnv1a64-hex>", and exits 0; everything else on
//     stdout/stderr is diagnostics the supervisor ignores;
//   * any other exit (signal, nonzero code, missing/garbled RESULT line)
//     is classified and retried by the supervisor.
//
// --inject deliberately misbehaves (crash / hang / garbage output) so the
// chaos harness can prove those failures stay contained.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/emergency.hpp"
#include "core/ols_model.hpp"
#include "core/pipeline.hpp"
#include "sweep/scenario.hpp"
#include "sweep/telemetry.hpp"
#include "util/cli.hpp"
#include "util/flight_recorder.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"
#include "workload/benchmark_suite.hpp"

using namespace vmap;

namespace {

/// SIGTERM = the supervisor's deadline expiring (soft kill before the
/// hard SIGKILL). Dump the flight ring so a hang_timeout quarantine still
/// carries the worker's last recorded events, then die with the default
/// disposition so the supervisor classifies the signal normally.
void term_dump_handler(int sig) {
  static volatile std::sig_atomic_t fired = 0;
  if (!fired) {
    fired = 1;
    vmap::flight::dump(2);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

int run_injection(const std::string& mode) {
  if (mode == "worker_crash") {
    std::fprintf(stderr, "chaos: aborting on request\n");
    std::abort();
  }
  if (mode == "worker_hang") {
    std::fprintf(stderr, "chaos: hanging on request\n");
    while (true) std::this_thread::sleep_for(std::chrono::seconds(60));
  }
  if (mode == "worker_garbage_output") {
    // Exit 0 with a RESULT line whose checksum cannot match: the
    // supervisor must classify this as garbage, not trust the exit code.
    std::printf("RESULT sensors=1 placement=0000000000000000 te=0 "
                "rel_err=0 ffffffffffffffff\n");
    return 0;
  }
  std::fprintf(stderr, "error: unknown inject mode: %s\n", mode.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args("sweep_worker — one scenario per subprocess");
  args.add_flag("scenario", "", "canonical scenario spec string");
  args.add_flag("job", "0", "job index (diagnostics only)");
  args.add_flag("attempt", "0", "attempt index (diagnostics only)");
  args.add_flag("inject", "", "chaos mode: worker_crash|worker_hang|"
                "worker_garbage_output");
  try {
    if (!args.parse(argc, argv)) return 0;

    // Telemetry plumbing before anything that can fail: crash/abort dumps
    // the flight ring to stderr (captured by the supervisor), SIGTERM does
    // the same on a deadline soft-kill, and the atexit shard hook fires on
    // every clean exit — including injected garbage-output exits.
    flight::install_crash_dump();
    std::signal(SIGTERM, term_dump_handler);
    sweep::init_worker_telemetry_from_env(
        std::strtoull(args.get("job").c_str(), nullptr, 10),
        std::strtoull(args.get("attempt").c_str(), nullptr, 10),
        args.get("scenario"));
    flight::note("worker.start");

    const std::string inject = args.get("inject");
    if (!inject.empty()) {
      flight::note("chaos.inject");
      return run_injection(inject);
    }

    // One solver thread: the *supervisor* owns parallelism (one worker
    // process per slot), and single-threaded solves keep results exactly
    // reproducible across parallel widths.
    set_thread_count(1);

    const auto scenario = sweep::Scenario::parse(args.get("scenario"));
    if (!scenario.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   scenario.status().to_string().c_str());
      return 2;
    }

    const core::ExperimentSetup setup = scenario->setup();
    const grid::PowerGrid grid(setup.grid);
    const chip::Floorplan floorplan(grid, setup.floorplan);
    const auto suite = workload::archetype_suite(scenario->workload);
    const core::DataCollector collector(grid, floorplan, setup.data);
    const core::Dataset data = collector.collect(suite);

    core::PipelineConfig config;
    config.lambda = 6.0;
    config.sensors_per_core = 2;
    const auto model = core::fit_placement(data, floorplan, config);
    const auto pred = model.predict(data.x_test);
    const auto rates = core::evaluate_prediction_detector(
        data.f_test, pred, data.config.emergency_threshold);

    sweep::JobResult result;
    result.sensors = model.sensor_rows().size();
    std::uint64_t placement = kFnv1a64Seed;
    for (std::size_t node : model.sensor_nodes()) {
      const std::uint64_t v = node;
      placement = fnv1a64(&v, sizeof(v), placement);
    }
    result.placement = placement;
    result.te = rates.total_error_rate();
    result.rel_err = core::relative_error(data.f_test, pred);

    std::printf("%s\n", sweep::encode_result_line(result).c_str());
    std::fflush(stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
