// Renders a fitted sensor placement on the full-chip ASCII floorplan and
// dumps the sensor coordinates (grid tiles and micrometres) — the quickest
// way to eyeball what a λ choice buys.

#include <cstdio>
#include <iostream>

#include "chip/floorplan.hpp"
#include "core/dataset.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "grid/power_grid.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/benchmark_suite.hpp"

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args("placement_viewer — render a sensor placement on the die");
  args.add_flag("cache", "vmap_dataset.cache", "dataset cache path");
  args.add_flag("lambda", "30", "paper lambda for the placement");
  args.add_flag("lambda-scale", "0.10", "paper lambda -> internal budget");
  args.add_flag("sensors-per-core", "-1",
                "fixed per-core sensor count (-1 = threshold rule)");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto setup = core::default_setup();
    const grid::PowerGrid grid(setup.grid);
    const chip::Floorplan floorplan(grid, setup.floorplan);
    const auto suite = workload::parsec_like_suite();
    const core::Dataset data = core::load_or_collect(
        args.get("cache"), grid, floorplan, setup.data, suite);

    core::PipelineConfig config;
    config.lambda =
        args.get_double("lambda") * args.get_double("lambda-scale");
    if (args.get_int("sensors-per-core") >= 0)
      config.sensors_per_core =
          static_cast<std::size_t>(args.get_int("sensors-per-core"));
    const auto model = core::fit_placement(data, floorplan, config);

    std::printf("lambda %.2f -> %zu sensors\n\n", config.lambda,
                model.sensor_rows().size());
    std::printf("legend: F=IFU D=IDU E=EXE L=LSU P=FPU $=L2 M=MISC "
                ".=blank *=sensor\n\n");
    std::fputs(floorplan.ascii_map(model.sensor_nodes()).c_str(), stdout);

    TablePrinter table({"sensor", "grid node", "tile x", "tile y", "x(um)",
                        "y(um)", "core"});
    for (std::size_t i = 0; i < model.sensor_nodes().size(); ++i) {
      const std::size_t node = model.sensor_nodes()[i];
      const auto [x, y] = grid.node_xy(node);
      const auto [ux, uy] = grid.node_position_um(node);
      const std::size_t core =
          (y / (setup.grid.ny / setup.floorplan.cores_y)) *
              setup.floorplan.cores_x +
          x / (setup.grid.nx / setup.floorplan.cores_x);
      table.add_row({TablePrinter::fmt(i), TablePrinter::fmt(node),
                     TablePrinter::fmt(x), TablePrinter::fmt(y),
                     TablePrinter::fmt(ux, 0), TablePrinter::fmt(uy, 0),
                     TablePrinter::fmt(core)});
    }
    table.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
