// Exports synthetic benchmark activity traces to CSV — for inspection,
// external plotting, or as templates for the PowerTrace import format
// (teams replacing the synthetic engine with real GEM5+McPAT traces).

#include <cstdio>

#include "chip/floorplan.hpp"
#include "core/experiment.hpp"
#include "grid/power_grid.hpp"
#include "util/cli.hpp"
#include "workload/activity.hpp"
#include "workload/benchmark_suite.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args("export_traces — dump benchmark activity traces to CSV");
  args.add_flag("benchmark", "bm1", "benchmark id (bm1..bm19)");
  args.add_flag("steps", "1000", "steps to capture");
  args.add_flag("seed", "20150607", "generator seed");
  args.add_flag("out", "", "output path (default <benchmark>.trace.csv)");
  args.add_bool("small", true,
                "use the miniature 2-core platform (false = 8-core)");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto setup =
        args.get_bool("small") ? core::small_setup() : core::default_setup();
    const grid::PowerGrid grid(setup.grid);
    const chip::Floorplan floorplan(grid, setup.floorplan);
    const auto suite = workload::parsec_like_suite();
    const std::size_t index =
        workload::benchmark_index(suite, args.get("benchmark"));

    workload::ActivityGenerator generator(
        floorplan, suite[index],
        Rng(static_cast<std::uint64_t>(args.get_int("seed"))));
    const auto trace = workload::PowerTrace::capture(
        generator, static_cast<std::size_t>(args.get_int("steps")));

    std::string out = args.get("out");
    if (out.empty()) out = suite[index].name + ".trace.csv";
    trace.save_csv(out);
    std::printf("wrote %zu steps x %zu blocks to %s\n", trace.steps(),
                trace.blocks(), out.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
