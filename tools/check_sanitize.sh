#!/usr/bin/env bash
# Sanitizer gate for the tier-1 suite.
#
#   tools/check_sanitize.sh [asan] [build-dir]   (default mode, default dir
#       build-sanitize): AddressSanitizer + UndefinedBehaviorSanitizer over
#       the full tier-1 test suite.
#   tools/check_sanitize.sh tsan [build-dir]     (default dir build-tsan):
#       ThreadSanitizer over the thread-pool, dataset-collection, and
#       flight-recorder tests — the parts that exercise the parallel
#       execution layer and the lock-free crash ring.
#   tools/check_sanitize.sh resilience [build-dir]  (default dir
#       build-sanitize): ASan+UBSan over just the error-taxonomy and
#       resilience tests — the fast gate for changes to the fallback
#       ladders, cache integrity checks, or Status plumbing. (The default
#       asan mode also covers these as part of the full suite.)
#   tools/check_sanitize.sh chaos [build-dir]     (default dir build-tsan):
#       ThreadSanitizer over the serving layer: the serve unit/integration
#       tests plus the serving_suite chaos harness with every --inject
#       scenario. Gates zero alarm loss AND zero data races across the
#       watchdog failover, overload shed, and checkpoint kill paths.
#   tools/check_sanitize.sh sweep [build-dir]     (default dir
#       build-sanitize): ASan+UBSan over the scenario sweep engine: the
#       journal/supervisor unit tests, then the sweep_suite chaos harness's
#       supervisor_kill mode (SIGKILL the supervisor mid-sweep, --resume
#       from the journal, assert the final CSV/JSON byte-identical to an
#       uninterrupted reference run).
#
# Any sanitizer report fails the run (halt_on_error / abort flags).
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="asan"
if [[ $# -ge 1 && ( "$1" == "asan" || "$1" == "tsan" || "$1" == "resilience" || "$1" == "chaos" || "$1" == "sweep" ) ]]; then
  MODE="$1"
  shift
fi

if [[ "$MODE" == "tsan" ]]; then
  BUILD_DIR="${1:-build-tsan}"
  cmake -B "$BUILD_DIR" -S . -DVMAP_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target parallel_test dataset_pipeline_test flight_recorder_test
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  # Run with more worker threads than cores so interleavings actually occur.
  export VMAP_THREADS=4
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'parallel_test|dataset_pipeline_test|flight_recorder_test'
  echo "thread-sanitize check passed (${BUILD_DIR})"
elif [[ "$MODE" == "chaos" ]]; then
  BUILD_DIR="${1:-build-tsan}"
  cmake -B "$BUILD_DIR" -S . -DVMAP_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target serve_test serve_fleet_test serving_suite
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'serve_test|serve_fleet_test'
  # The chaos harness under TSan: a smaller throughput load (TSan is ~10x),
  # every injection scenario. Exit 1 = an invariant broke (alarm loss,
  # decision divergence); a TSan report aborts via halt_on_error.
  "$BUILD_DIR"/bench/serving_suite --threads-list 2,4 --chips 8 \
    --samples 400 --inject all
  echo "chaos sanitize check passed (${BUILD_DIR})"
elif [[ "$MODE" == "sweep" ]]; then
  BUILD_DIR="${1:-build-sanitize}"
  cmake -B "$BUILD_DIR" -S . -DVMAP_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target sweep_journal_test sweep_test telemetry_merge_test \
    sweep_worker sweep_suite
  export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'sweep_journal_test|sweep_test|telemetry_merge_test'
  # The kill/resume identity gate: a reference sweep of the tiny 3x2
  # matrix, then a supervisor SIGKILLed mid-sweep and resumed from its
  # journal; exit 1 if the final CSV/JSON differ by one byte or any job
  # was lost. Real sweep_worker subprocesses run under ASan too, and
  # --telemetry on additionally gates shard-merge determinism plus the
  # quarantine flight-tail contract.
  rm -rf "$BUILD_DIR"/sweep_smoke
  "$BUILD_DIR"/bench/sweep_suite --inject supervisor_kill \
    --worker "$BUILD_DIR"/tools/sweep_worker \
    --work-dir "$BUILD_DIR"/sweep_smoke --parallel 2 --telemetry on
  echo "sweep sanitize check passed (${BUILD_DIR})"
elif [[ "$MODE" == "resilience" ]]; then
  BUILD_DIR="${1:-build-sanitize}"
  cmake -B "$BUILD_DIR" -S . -DVMAP_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target status_test resilience_test
  export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'status_test|resilience_test'
  echo "resilience sanitize check passed (${BUILD_DIR})"
else
  BUILD_DIR="${1:-build-sanitize}"
  cmake -B "$BUILD_DIR" -S . -DVMAP_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j"$(nproc)"
  export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
  echo "sanitize check passed (${BUILD_DIR})"
fi
