#!/usr/bin/env bash
# Builds the repo with AddressSanitizer + UndefinedBehaviorSanitizer
# (-DVMAP_SANITIZE=address,undefined) and runs the tier-1 test suite under
# it. Any sanitizer report fails the run (halt_on_error / abort flags).
#
# Usage: tools/check_sanitize.sh [build-dir]   (default: build-sanitize)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . -DVMAP_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
echo "sanitize check passed (${BUILD_DIR})"
