// Diagnostic: droop-distribution statistics of a cached dataset.
//
// Prints, per benchmark, the chip-level emergency base rate on the test
// maps, quantiles of the per-map worst FA voltage, and how deep the
// crossings go relative to the threshold — the numbers that decide whether
// emergency detection is well-posed (bimodal, deep crossings) or a
// knife-edge (everything hovering at the threshold).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/dataset.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args("dataset_stats — droop distribution diagnostics");
  args.add_flag("cache", "vmap_dataset.cache", "dataset cache to analyze");
  try {
    if (!args.parse(argc, argv)) return 0;
    const core::Dataset data = core::Dataset::load(args.get("cache"));
    const double vth = data.config.emergency_threshold;

    std::printf("dataset: M=%zu K=%zu N_train=%zu N_test=%zu scale=%g "
                "vth=%.2f\n\n",
                data.num_candidates(), data.num_blocks(),
                data.x_train.cols(), data.x_test.cols(), data.current_scale,
                vth);

    TablePrinter table({"benchmark", "P(emerg)", "min q05", "min q50",
                        "min q95", "worst", "med depth(mV)",
                        "q90 depth(mV)", "margin(mV)"});
    std::vector<double> all_mins;
    for (std::size_t b = 0; b < data.benchmarks.size(); ++b) {
      const linalg::Matrix f = data.f_test_for(b);
      std::vector<double> mins(f.cols());
      for (std::size_t s = 0; s < f.cols(); ++s) {
        double mn = 1e300;
        for (std::size_t k = 0; k < f.rows(); ++k)
          mn = std::min(mn, f(k, s));
        mins[s] = mn;
        all_mins.push_back(mn);
      }
      std::sort(mins.begin(), mins.end());
      auto quantile = [&](double q) {
        return mins[static_cast<std::size_t>(
            q * static_cast<double>(mins.size() - 1))];
      };
      std::vector<double> depths;   // crossing depths below threshold
      std::vector<double> margins;  // safe maps' distance above threshold
      for (double mn : mins) {
        if (mn < vth)
          depths.push_back(vth - mn);
        else
          margins.push_back(mn - vth);
      }
      std::sort(depths.begin(), depths.end());
      std::sort(margins.begin(), margins.end());
      auto med = [](const std::vector<double>& v) {
        return v.empty() ? 0.0 : v[v.size() / 2];
      };
      auto q90 = [](const std::vector<double>& v) {
        return v.empty() ? 0.0
                         : v[static_cast<std::size_t>(
                               0.9 * static_cast<double>(v.size() - 1))];
      };
      table.add_row({data.benchmarks[b].name,
                     TablePrinter::fmt(static_cast<double>(depths.size()) /
                                           static_cast<double>(mins.size()),
                                       2),
                     TablePrinter::fmt(quantile(0.05), 3),
                     TablePrinter::fmt(quantile(0.50), 3),
                     TablePrinter::fmt(quantile(0.95), 3),
                     TablePrinter::fmt(mins.front(), 3),
                     TablePrinter::fmt(1e3 * med(depths), 1),
                     TablePrinter::fmt(1e3 * q90(depths), 1),
                     TablePrinter::fmt(1e3 * med(margins), 1)});
    }
    table.print(std::cout);

    std::sort(all_mins.begin(), all_mins.end());
    std::size_t crossing = 0;
    for (double mn : all_mins)
      if (mn < vth) ++crossing;
    std::printf("\noverall: P(emerg) = %.3f over %zu test maps\n",
                static_cast<double>(crossing) /
                    static_cast<double>(all_mins.size()),
                all_mins.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
