#!/usr/bin/env bash
# Deterministically damage a vmap_dataset.cache for kill-resilience demos.
#
#   tools/corrupt_cache.sh flip <cache> [offset]   XOR one byte with 0x5A
#       (default offset: the middle of the file) — lands inside a payload
#       section, so the per-section checksum must flag it.
#   tools/corrupt_cache.sh truncate <cache> [frac] Truncate to `frac` of the
#       original size (default 2/3) — simulates a run killed mid-write of a
#       pre-v7 cache or a torn copy.
#   tools/corrupt_cache.sh append <cache>          Append trailing garbage —
#       must be rejected, not silently ignored.
#
# After damaging, any bench's load_or_collect detects the corruption,
# recollects, and rewrites the cache (watch for the [recollect] event in the
# resilience summary). bench/robustness_noise --inject runs the same
# scenarios end-to-end with pass/fail scoring.
set -euo pipefail

usage() {
  sed -n '2,15p' "$0" >&2
  exit 2
}

[[ $# -ge 2 ]] || usage
MODE="$1"
CACHE="$2"
[[ -f "$CACHE" ]] || { echo "no such cache: $CACHE" >&2; exit 1; }
SIZE=$(wc -c < "$CACHE")

case "$MODE" in
  flip)
    OFFSET="${3:-$((SIZE / 2))}"
    [[ "$OFFSET" -lt "$SIZE" ]] || { echo "offset past EOF" >&2; exit 1; }
    BYTE=$(od -An -tu1 -j "$OFFSET" -N 1 "$CACHE" | tr -d ' ')
    FLIPPED=$((BYTE ^ 0x5A))
    printf "$(printf '\\%03o' "$FLIPPED")" |
      dd of="$CACHE" bs=1 seek="$OFFSET" count=1 conv=notrunc status=none
    echo "flipped byte at offset $OFFSET ($BYTE -> $FLIPPED) in $CACHE"
    ;;
  truncate)
    FRAC="${3:-2/3}"
    NEW=$((SIZE * ${FRAC%%/*} / ${FRAC##*/}))
    truncate -s "$NEW" "$CACHE"
    echo "truncated $CACHE from $SIZE to $NEW bytes"
    ;;
  append)
    printf 'trailing garbage' >> "$CACHE"
    echo "appended 16 garbage bytes to $CACHE"
    ;;
  *)
    usage
    ;;
esac
