#!/usr/bin/env python3
"""Validate the sweep fleet's telemetry artifacts, or compare two run
reports' scalars byte-exactly.

Validation mode (the CI telemetry-smoke job):

  tools/check_telemetry.py --trace sweep_out/sweep_trace.json \
                           --report sweep_out/sweep_report.json

checks that the merged trace is well-formed Chrome-trace JSON — a
supervisor process row, one process_name/process_labels row pair per
job, a job_meta instant event for every merged shard, X events carrying
pid/tid/ts/dur — and that the sweep report's telemetry section is
consistent with it (shards_merged + shards_missing == jobs, counter
totals equal the per-axis sums along every axis).

Scalar-compare mode (telemetry-off byte-identity):

  tools/check_telemetry.py --compare-scalars a.json b.json

exits nonzero unless the two reports' "scalars" sections are exactly
equal (same keys, bit-identical values) — the proof that turning
telemetry off leaves results untouched.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    return 1


def load(path):
    with open(path) as f:
        return json.load(f)


def check_trace(trace, report):
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("merged trace has no traceEvents array")

    process_names = {}
    labels = {}
    metas = set()
    for e in events:
        if not isinstance(e, dict):
            return fail("non-object trace event")
        for key in ("ph", "pid", "tid", "name"):
            if key not in e:
                return fail(f"trace event missing '{key}': {e}")
        if e["ph"] == "M" and e["name"] == "process_name":
            process_names[e["pid"]] = e["args"]["name"]
        elif e["ph"] == "M" and e["name"] == "process_labels":
            labels[e["pid"]] = e["args"]["labels"]
        elif e["ph"] == "i" and e["name"] == "job_meta":
            for key in ("scenario", "attempt", "status"):
                if key not in e.get("args", {}):
                    return fail(f"job_meta missing '{key}': {e}")
            metas.add(e["pid"])
        elif e["ph"] == "X":
            for key in ("ts", "dur"):
                if not isinstance(e.get(key), (int, float)):
                    return fail(f"X event with non-numeric '{key}': {e}")

    if process_names.get(1) != "sweep_supervisor":
        return fail("pid 1 is not the sweep_supervisor process row")
    job_pids = {pid for pid, name in process_names.items()
                if name.startswith("job_")}
    if not job_pids:
        return fail("no job process rows in the merged trace")
    missing_labels = job_pids - set(labels)
    if missing_labels:
        return fail(f"job pids without a status label: {missing_labels}")

    tele = report.get("telemetry")
    if not isinstance(tele, dict):
        return fail("sweep report has no telemetry section")
    for key in ("shards_merged", "shards_missing", "flight_jobs",
                "counters_total", "by_axis"):
        if key not in tele:
            return fail(f"telemetry section missing '{key}'")
    if tele["shards_merged"] + tele["shards_missing"] != len(job_pids):
        return fail(
            f"shards_merged+shards_missing = "
            f"{tele['shards_merged'] + tele['shards_missing']} but the "
            f"trace holds {len(job_pids)} jobs")
    if len(metas) != tele["shards_merged"]:
        return fail(f"{len(metas)} job_meta events != "
                    f"{tele['shards_merged']} merged shards")

    totals = tele["counters_total"]
    for axis, groups in tele["by_axis"].items():
        sums = {}
        for counters in groups.values():
            for name, value in counters.items():
                sums[name] = sums.get(name, 0) + value
        if sums != totals:
            return fail(f"axis '{axis}' counter sums {sums} != "
                        f"counters_total {totals}")

    rows = report.get("rows", [])
    print(f"check_telemetry: OK — {len(job_pids)} jobs, "
          f"{tele['shards_merged']} shards merged, "
          f"{tele['flight_jobs']} flight tails, "
          f"{sum(1 for e in events if e.get('ph') == 'X')} spans"
          f"{', ' + str(len(rows)) + ' report rows' if rows else ''}")
    return 0


def compare_scalars(path_a, path_b):
    a, b = load(path_a), load(path_b)
    sa, sb = a.get("scalars"), b.get("scalars")
    if sa is None or sb is None:
        return fail("a report has no scalars section")
    if set(sa) != set(sb):
        only_a = set(sa) - set(sb)
        only_b = set(sb) - set(sa)
        return fail(f"scalar keys differ (only in {path_a}: {only_a}; "
                    f"only in {path_b}: {only_b})")
    diffs = [k for k in sa if sa[k] != sb[k]]
    if diffs:
        detail = ", ".join(f"{k}: {sa[k]} != {sb[k]}" for k in diffs)
        return fail(f"scalars diverge: {detail}")
    print(f"check_telemetry: OK — {len(sa)} scalars byte-identical")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="validate merged sweep telemetry, or compare report "
                    "scalars byte-exactly")
    parser.add_argument("--trace", help="merged sweep_trace.json")
    parser.add_argument("--report", help="sweep_report.json with telemetry")
    parser.add_argument("--compare-scalars", nargs=2,
                        metavar=("A", "B"),
                        help="two run-report JSONs whose scalars must match")
    args = parser.parse_args()

    if args.compare_scalars:
        return compare_scalars(*args.compare_scalars)
    if not args.trace or not args.report:
        parser.error("need --trace and --report (or --compare-scalars)")
    try:
        trace = load(args.trace)
        report = load(args.report)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot read input: {e}")
    return check_trace(trace, report)


if __name__ == "__main__":
    sys.exit(main())
