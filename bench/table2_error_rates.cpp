// Reproduces Table 2: miss / wrong-alarm / total error rates of Eagle-Eye
// vs. the proposed approach on all 19 benchmarks, with 2 sensors per core.
//
// Paper's headline: the proposed model roughly halves ME and TE on every
// benchmark, while WAE stays small (< 1e-3) for both. Each benchmark is
// evaluated on its held-out test maps; placements and models are trained
// once on the pooled training maps (as in the paper).

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/eagle_eye.hpp"
#include "core/emergency.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args(
      "table2_error_rates — Table 2: ME/WAE/TE per benchmark, Eagle-Eye vs "
      "proposed, 2 sensors per core");
  benchutil::add_common_flags(args);
  benchutil::add_backend_flags(args);
  args.add_flag("sensors", "2", "sensors per core for both approaches");
  args.add_flag("eagle-strategy", "worst-noise",
                "Eagle-Eye placement: worst-noise | coverage");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto platform = benchutil::load_platform(args);
    const auto& data = platform.data;
    const double vth = platform.setup.data.emergency_threshold;
    const auto sensors = static_cast<std::size_t>(args.get_int("sensors"));

    core::EagleEyeOptions ee;
    const std::string strategy = args.get("eagle-strategy");
    if (strategy == "worst-noise") {
      ee.strategy = core::EagleEyeStrategy::kWorstNoise;
    } else if (strategy == "coverage") {
      ee.strategy = core::EagleEyeStrategy::kGreedyCoverage;
    } else {
      throw std::runtime_error("unknown --eagle-strategy: " + strategy);
    }
    Timer t_eagle;
    const auto eagle_rows =
        core::eagle_eye_place(data, *platform.floorplan, sensors, ee);
    const double eagle_ms = t_eagle.millis();

    benchutil::RunReport report("table2_error_rates");
    core::PipelineConfig config;
    config.lambda = benchutil::scaled_lambda(args, 60.0);
    config.sensors_per_core = sensors;
    benchutil::apply_backend_flags(args, config, report);
    Timer t_fit;
    const auto model = core::fit_placement(data, *platform.floorplan, config,
                                           platform.report.get());
    const double fit_ms = t_fit.millis();

    std::printf("== Table 2: error rates with %zu sensors per core "
                "(emergency: V < %.2f) ==\n",
                sensors, vth);
    std::printf("Eagle-Eye strategy: %s; proposed: %s selection + %s "
                "prediction\n\n",
                strategy.c_str(), config.selection.c_str(),
                config.prediction.c_str());

    TablePrinter table({"benchmark", "P(emerg)", "EE ME", "EE WAE", "EE TE",
                        "our ME", "our WAE", "our TE", "TE ratio"});
    double ee_me_sum = 0, ee_te_sum = 0, our_me_sum = 0, our_te_sum = 0;
    double ee_wae_max = 0, our_wae_max = 0;
    for (std::size_t b = 0; b < data.benchmarks.size(); ++b) {
      const linalg::Matrix x_test = data.x_test_for(b);
      const linalg::Matrix f_test = data.f_test_for(b);

      const auto eagle =
          core::evaluate_sensor_detector(f_test, x_test, eagle_rows, vth);
      const linalg::Matrix f_pred = model.predict(x_test);
      const auto ours =
          core::evaluate_prediction_detector(f_test, f_pred, vth);

      const double base_rate =
          static_cast<double>(eagle.emergencies) /
          static_cast<double>(eagle.samples);
      const double te_ratio =
          eagle.total_error_rate() > 0
              ? ours.total_error_rate() / eagle.total_error_rate()
              : 0.0;
      table.add_row(
          {"bm" + std::to_string(b + 1), TablePrinter::fmt(base_rate, 2),
           TablePrinter::fmt(eagle.miss_rate(), 4),
           TablePrinter::fmt(eagle.wrong_alarm_rate(), 4),
           TablePrinter::fmt(eagle.total_error_rate(), 4),
           TablePrinter::fmt(ours.miss_rate(), 4),
           TablePrinter::fmt(ours.wrong_alarm_rate(), 4),
           TablePrinter::fmt(ours.total_error_rate(), 4),
           TablePrinter::fmt(te_ratio, 2)});
      ee_me_sum += eagle.miss_rate();
      ee_te_sum += eagle.total_error_rate();
      our_me_sum += ours.miss_rate();
      our_te_sum += ours.total_error_rate();
      ee_wae_max = std::max(ee_wae_max, eagle.wrong_alarm_rate());
      our_wae_max = std::max(our_wae_max, ours.wrong_alarm_rate());
    }
    const double nb = static_cast<double>(data.benchmarks.size());
    table.add_row({"mean", "-", TablePrinter::fmt(ee_me_sum / nb, 4), "-",
                   TablePrinter::fmt(ee_te_sum / nb, 4),
                   TablePrinter::fmt(our_me_sum / nb, 4), "-",
                   TablePrinter::fmt(our_te_sum / nb, 4),
                   TablePrinter::fmt(our_te_sum / std::max(ee_te_sum, 1e-12),
                                     2)});
    table.print(std::cout);

    std::printf("\nsummary: mean ME %.4f -> %.4f (%.2fx), mean TE %.4f -> "
                "%.4f (%.2fx), max WAE EE %.4f / ours %.4f\n",
                ee_me_sum / nb, our_me_sum / nb,
                our_me_sum / std::max(ee_me_sum, 1e-12), ee_te_sum / nb,
                our_te_sum / nb, our_te_sum / std::max(ee_te_sum, 1e-12),
                ee_wae_max, our_wae_max);
    std::printf("(paper: proposed ME and TE are about half of Eagle-Eye's "
                "on every benchmark; WAE < 1e-3 for both)\n");

    report.scalar("mean_ee_me", ee_me_sum / nb);
    report.scalar("mean_ee_te", ee_te_sum / nb);
    report.scalar("mean_our_me", our_me_sum / nb);
    report.scalar("mean_our_te", our_te_sum / nb);
    report.scalar("max_ee_wae", ee_wae_max);
    report.scalar("max_our_wae", our_wae_max);
    report.scalar("te_ratio", our_te_sum / std::max(ee_te_sum, 1e-12));
    report.scalar("sensors_placed",
                  static_cast<double>(model.sensor_rows().size()));
    report.timing("platform_load", platform.load_ms);
    report.timing("eagle_eye_place", eagle_ms);
    report.timing("fit_placement", fit_ms);
    benchutil::write_report(args, &platform, report);
    benchutil::print_resilience(platform);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
