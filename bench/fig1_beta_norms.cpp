// Reproduces Fig. 1: the group-lasso coefficient norms ||β_m||₂ for every
// sensor candidate in one core, at two λ values (paper: λ = 10 and λ = 30).
//
// The paper's observation: selected candidates have ||β_m||₂ well above the
// threshold T = 1e-3 while rejected ones sit around 1e-5 … 1e-10, so the
// threshold choice is uncritical. This harness prints the per-candidate
// norm series (the figure's y-values), a log10 histogram, and the
// selected/rejected gap statistics.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/group_lasso.hpp"
#include "core/normalizer.hpp"
#include "core/sensor_selection.hpp"
#include "util/table.hpp"

namespace {

vmap::core::GroupLassoResult solve_core_gl(
    const vmap::benchutil::Platform& platform, std::size_t core,
    double budget) {
  using namespace vmap;
  const auto candidate_rows =
      platform.data.candidate_rows_for_core(*platform.floorplan, core);
  const auto block_rows = platform.floorplan->block_ids_in_core(core);
  const linalg::Matrix x = platform.data.x_train.select_rows(candidate_rows);
  const linalg::Matrix f = platform.data.f_train.select_rows(block_rows);
  const core::Normalizer xn(x), fn(f);
  core::GroupLasso solver(
      core::GroupLassoProblem::from_data(xn.normalize(x), fn.normalize(f)));
  vmap::core::GroupLassoResult gl = solver.solve_budget(budget);
  if (!gl.status.ok()) throw StatusError(gl.status);
  if (!gl.converged)
    std::fprintf(stderr,
                 "warning: group lasso hit the iteration cap at budget %.3f; "
                 "the printed norms are inexact\n",
                 budget);
  return gl;
}

void print_histogram(const vmap::linalg::Vector& norms) {
  // log10 histogram over decades [-12, 1).
  constexpr int kLo = -12, kHi = 1;
  int bins[kHi - kLo] = {};
  int zeros = 0;
  for (std::size_t m = 0; m < norms.size(); ++m) {
    if (norms[m] <= 0.0) {
      ++zeros;
      continue;
    }
    int d = static_cast<int>(std::floor(std::log10(norms[m])));
    d = std::clamp(d, kLo, kHi - 1);
    ++bins[d - kLo];
  }
  std::printf("  exact zeros: %d\n", zeros);
  for (int d = kLo; d < kHi; ++d) {
    if (bins[d - kLo] == 0) continue;
    std::printf("  1e%+03d..1e%+03d : %4d ", d, d + 1, bins[d - kLo]);
    for (int i = 0; i < std::min(bins[d - kLo], 60); ++i) std::putchar('#');
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args(
      "fig1_beta_norms — Fig. 1: ||beta_m||_2 per sensor candidate in one "
      "core at two lambda values");
  benchutil::add_common_flags(args);
  args.add_flag("core", "0", "which core to analyze");
  args.add_flag("lambda1", "10", "first paper lambda");
  args.add_flag("lambda2", "30", "second paper lambda");
  args.add_flag("threshold", "1e-3", "selection threshold T");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto platform = benchutil::load_platform(args);
    const auto core_index = static_cast<std::size_t>(args.get_int("core"));
    const double threshold = args.get_double("threshold");

    std::printf("== Fig. 1: ||beta_m||_2 for sensor candidates in core %zu "
                "==\n",
                core_index);
    benchutil::RunReport report("fig1_beta_norms");
    report.timing("platform_load", platform.load_ms);
    for (const char* flag : {"lambda1", "lambda2"}) {
      const double paper_lambda = args.get_double(flag);
      const double budget = benchutil::scaled_lambda(args, paper_lambda);
      const auto gl = solve_core_gl(platform, core_index, budget);
      const auto selection = core::select_sensors(gl, threshold);

      std::printf("\n-- lambda = %.0f (budget %.2f): %zu of %zu candidates "
                  "selected (T = %g) --\n",
                  paper_lambda, budget, selection.count(),
                  gl.group_norms.size(), threshold);
      print_histogram(gl.group_norms);

      // The figure's headline: the norm gap across the threshold.
      double min_selected = 1e300, max_rejected = 0.0;
      for (std::size_t m = 0; m < gl.group_norms.size(); ++m) {
        if (gl.group_norms[m] > threshold)
          min_selected = std::min(min_selected, gl.group_norms[m]);
        else
          max_rejected = std::max(max_rejected, gl.group_norms[m]);
      }
      report.scalar(std::string(flag) + "_selected",
                    static_cast<double>(selection.count()));
      report.scalar(std::string(flag) + "_min_selected_norm",
                    selection.count() > 0 ? min_selected : 0.0);
      report.scalar(std::string(flag) + "_max_rejected_norm", max_rejected);
      if (selection.count() > 0) {
        std::printf("  smallest selected ||beta||: %.3e\n", min_selected);
        if (max_rejected > 0.0) {
          std::printf("  largest rejected  ||beta||: %.3e (gap %.0fx)\n",
                      max_rejected, min_selected / max_rejected);
        } else {
          std::printf("  all rejected candidates have exactly zero "
                      "coefficients (BCD shrinks them to 0; the SOCP in the "
                      "paper leaves 1e-5..1e-10 residue)\n");
        }
      }

      TablePrinter top({"rank", "candidate row", "grid node", "||beta_m||_2",
                        "selected"});
      std::vector<std::size_t> order(gl.group_norms.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return gl.group_norms[a] > gl.group_norms[b];
      });
      const auto candidate_rows = platform.data.candidate_rows_for_core(
          *platform.floorplan, core_index);
      const std::size_t show = std::min<std::size_t>(12, order.size());
      for (std::size_t i = 0; i < show; ++i) {
        const std::size_t m = order[i];
        top.add_row(
            {TablePrinter::fmt(i + 1), TablePrinter::fmt(candidate_rows[m]),
             TablePrinter::fmt(platform.data.candidate_nodes[candidate_rows[m]]),
             TablePrinter::sci(gl.group_norms[m], 3),
             gl.group_norms[m] > threshold ? "yes" : "no"});
      }
      top.print(std::cout);
    }
    benchutil::write_report(args, &platform, report);
    benchutil::print_resilience(platform);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
