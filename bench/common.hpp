#pragma once
// Shared harness for the experiment-reproduction benches.
//
// Every bench binary regenerates one table/figure of the paper on the same
// canonical platform (core::default_setup()). Because full data collection
// costs minutes of transient simulation, the collected dataset is cached on
// disk (vmap_dataset.cache by default) and reused across binaries — the
// cache is keyed to the full DataConfig, so changing flags forces a
// re-collection automatically.

#include <memory>
#include <string>
#include <vector>

#include "chip/floorplan.hpp"
#include "core/dataset.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "grid/power_grid.hpp"
#include "util/cli.hpp"
#include "util/resilience.hpp"
#include "workload/benchmark_suite.hpp"

namespace vmap::benchutil {

/// Everything a bench needs: configured substrate + collected data.
struct Platform {
  core::ExperimentSetup setup;
  std::unique_ptr<grid::PowerGrid> grid;
  std::unique_ptr<chip::Floorplan> floorplan;
  std::vector<workload::BenchmarkProfile> suite;
  core::Dataset data;
  /// Wall time of load_or_collect (cache load or full collection).
  double load_ms = 0.0;
  /// Accumulates every guardrail action taken during platform construction
  /// and any fit the bench threads it into (heap-held: the report owns a
  /// mutex, and Platform is returned by value).
  std::unique_ptr<ResilienceReport> report =
      std::make_unique<ResilienceReport>();
};

/// Machine-readable outcome of one bench run, written as JSON by
/// write_report() when --report names a file. Scalars are the bench's key
/// correctness results (TE, rel-err, sensor counts, ...) and are gated
/// byte-identically by tools/perf_gate.py; timings are wall-clock and
/// gated with a relative tolerance after calibration normalization.
struct RunReport {
  explicit RunReport(std::string bench_name) : bench(std::move(bench_name)) {}
  std::string bench;
  std::vector<std::pair<std::string, double>> scalars;
  std::vector<std::pair<std::string, double>> timings_ms;
  /// Free-form string annotations ("selection" -> "group_lasso", ...),
  /// emitted as a "tags" object. Not gated; they make the artifact
  /// self-describing (which backends produced these scalars, etc.).
  std::vector<std::pair<std::string, std::string>> tags;

  void scalar(const std::string& name, double value) {
    scalars.emplace_back(name, value);
  }
  void timing(const std::string& name, double ms) {
    timings_ms.emplace_back(name, ms);
  }
  void tag(const std::string& name, const std::string& value) {
    tags.emplace_back(name, value);
  }
};

/// Fixed single-threaded arithmetic workload, in milliseconds (min of
/// three runs). Reports carry it so perf gates can compare wall times
/// across machines of different speed: gate on wall/calibration, not raw
/// wall.
double calibration_ms();

/// Writes the run report named by --report (no-op when the flag is
/// empty/absent): schema version, bench name, platform hash + seed +
/// thread count (when `platform` is non-null), calibration timing, the
/// scalars/timings, the full metrics snapshot, and the resilience report.
void write_report(const CliArgs& args, const Platform* platform,
                  const RunReport& report);

/// Registers the flags shared by all experiment benches. Also installs the
/// SIGINT/SIGTERM teardown handler (install_interrupt_flush) so a ^C'd or
/// terminated bench still leaves its VMAP_TRACE file and a metrics
/// snapshot behind.
void add_common_flags(CliArgs& args);

/// Installs SIGINT/SIGTERM handlers that flush the active VMAP_TRACE trace
/// file and dump a metrics snapshot to stderr before re-raising the signal
/// (so the process still dies with the conventional signal exit status).
/// Best-effort by design: the flush path is not async-signal-safe, which
/// is acceptable for an interactive interrupt of a bench tool — the
/// alternative is losing the whole trace every time. Idempotent.
void install_interrupt_flush();

/// Builds the platform from parsed flags (collects or loads the dataset).
Platform load_platform(const CliArgs& args);

/// Prints the platform's resilience report to stderr: one "all clean" line
/// when nothing degraded, otherwise the full event summary. Call at the end
/// of a bench so recoveries (cache recollection, solver fallbacks, ridge
/// refits) are never silently absorbed into the results.
void print_resilience(const Platform& platform);

/// Registers `--selection` / `--prediction` (model-backend names resolved
/// through the core registry; see src/core/backend.hpp). Call after
/// add_common_flags in benches that fit placements.
void add_backend_flags(CliArgs& args);

/// Copies the backend flags into a pipeline config and tags the report with
/// the chosen names. Unknown names surface later from fit_placement as
/// StatusError(kInvalidArgument) listing what is registered.
void apply_backend_flags(const CliArgs& args, core::PipelineConfig& config,
                         RunReport& report);

/// Paper-λ to internal group-lasso budget: the paper sweeps λ ∈ [10, 60] on
/// its (unnormalized-objective) SOCP; our normalized-Gram budget lives on a
/// different scale, so benches convert with budget = λ · scale. The default
/// scale maps λ = 10 … 60 onto roughly the paper's 2 … 16 sensors/core.
double scaled_lambda(const CliArgs& args, double paper_lambda);

}  // namespace vmap::benchutil
