// Reproduces Fig. 3: where Eagle-Eye and the proposed approach place seven
// sensors in one core.
//
// The paper's observation: Eagle-Eye concentrates six of seven sensors
// around the worst-noise (execution) unit, while the GL-based approach
// keeps only about half there and spreads the rest across other units,
// because it optimizes correlation with *all* monitored blocks rather than
// noise severity. We render both placements on the core's ASCII floorplan
// (blocks drawn as unit letters, sensors as '*') and print per-unit sensor
// histograms (each sensor attributed to its nearest function block's unit).

#include <cstdio>
#include <iostream>
#include <limits>

#include "common.hpp"
#include "core/eagle_eye.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

namespace {

using namespace vmap;

/// Unit of the function block nearest to `node` (grid distance).
chip::UnitKind nearest_unit(const benchutil::Platform& platform,
                            std::size_t node) {
  double best = std::numeric_limits<double>::infinity();
  chip::UnitKind unit = chip::UnitKind::kMisc;
  for (const auto& block : platform.floorplan->blocks()) {
    for (std::size_t bn : block.nodes) {
      const double d = platform.grid->distance_um(node, bn);
      if (d < best) {
        best = d;
        unit = block.unit;
      }
    }
  }
  return unit;
}

/// Renders the core region's slice of the full-chip ASCII map.
void print_core_map(const benchutil::Platform& platform, std::size_t core,
                    const std::vector<std::size_t>& sensor_nodes) {
  const std::string full = platform.floorplan->ascii_map(sensor_nodes);
  const auto& gc = platform.setup.grid;
  const std::size_t slot_w = gc.nx / platform.setup.floorplan.cores_x;
  const std::size_t slot_h = gc.ny / platform.setup.floorplan.cores_y;
  const std::size_t cx = core % platform.setup.floorplan.cores_x;
  const std::size_t cy = core / platform.setup.floorplan.cores_x;
  for (std::size_t y = cy * slot_h; y < (cy + 1) * slot_h; ++y) {
    const std::size_t line_start = y * (gc.nx + 1);  // +1 for newline
    fwrite(full.data() + line_start + cx * slot_w, 1, slot_w, stdout);
    std::putchar('\n');
  }
}

void print_unit_histogram(const benchutil::Platform& platform,
                          const std::vector<std::size_t>& sensor_nodes) {
  int histogram[chip::kUnitKindCount] = {};
  for (std::size_t node : sensor_nodes)
    ++histogram[static_cast<std::size_t>(nearest_unit(platform, node))];
  std::printf("  sensors by nearest unit: ");
  for (std::size_t u = 0; u < chip::kUnitKindCount; ++u) {
    if (histogram[u] == 0) continue;
    std::printf("%s=%d ", chip::unit_name(static_cast<chip::UnitKind>(u)),
                histogram[u]);
  }
  std::putchar('\n');
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(
      "fig3_placement_map — Fig. 3: sensor locations chosen by Eagle-Eye vs "
      "the proposed approach (7 sensors in one core)");
  benchutil::add_common_flags(args);
  args.add_flag("core", "0", "which core to draw");
  args.add_flag("sensors", "7", "sensors per core");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto platform = benchutil::load_platform(args);
    const auto core = static_cast<std::size_t>(args.get_int("core"));
    const auto count = static_cast<std::size_t>(args.get_int("sensors"));

    // Eagle-Eye placement (worst-noise ranking, the behaviour Fig. 3 shows).
    core::EagleEyeOptions ee;
    ee.strategy = core::EagleEyeStrategy::kWorstNoise;
    const auto eagle_rows =
        core::eagle_eye_place(platform.data, *platform.floorplan, count, ee);

    // Proposed placement: top-`count` GL selection in each core.
    core::PipelineConfig config;
    config.lambda = benchutil::scaled_lambda(args, 60.0);
    config.sensors_per_core = count;
    const auto model =
        core::fit_placement(platform.data, *platform.floorplan, config);

    auto rows_in_core = [&](const std::vector<std::size_t>& rows) {
      std::vector<std::size_t> nodes;
      const auto core_rows =
          platform.data.candidate_rows_for_core(*platform.floorplan, core);
      for (std::size_t row : rows) {
        for (std::size_t cr : core_rows) {
          if (cr == row) {
            nodes.push_back(platform.data.candidate_nodes[row]);
            break;
          }
        }
      }
      return nodes;
    };
    const auto eagle_nodes = rows_in_core(eagle_rows);
    const auto proposed_nodes = rows_in_core(model.sensor_rows());

    std::printf("== Fig. 3: %zu-sensor placements in core %zu ==\n", count,
                core);
    std::printf("legend: F=IFU D=IDU E=EXE(worst noise) L=LSU P=FPU $=L2 "
                "M=MISC .=blank area *=sensor\n");

    std::printf("\n-- Eagle-Eye (worst-noise ranking), %zu sensors --\n",
                eagle_nodes.size());
    print_core_map(platform, core, eagle_nodes);
    print_unit_histogram(platform, eagle_nodes);

    std::printf("\n-- Proposed (group-lasso correlation), %zu sensors --\n",
                proposed_nodes.size());
    print_core_map(platform, core, proposed_nodes);
    print_unit_histogram(platform, proposed_nodes);

    std::printf("\n(paper: Eagle-Eye clusters ~6/7 sensors at the EXE unit; "
                "the proposed approach spreads sensors across units)\n");

    benchutil::RunReport report("fig3_placement_map");
    report.scalar("eagle_sensors_in_core",
                  static_cast<double>(eagle_nodes.size()));
    report.scalar("proposed_sensors_in_core",
                  static_cast<double>(proposed_nodes.size()));
    report.scalar("proposed_sensors_total",
                  static_cast<double>(model.sensor_rows().size()));
    report.timing("platform_load", platform.load_ms);
    benchutil::write_report(args, &platform, report);
    benchutil::print_resilience(platform);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
