// Reproduces Fig. 4: error rates of BM4 as a function of the total number
// of allocated sensors, Eagle-Eye vs the proposed approach.
//
// Paper's reading of the figure: proposed ME/TE sit below Eagle-Eye across
// the sweep; for WAE the proposed approach wins once the total sensor
// count is large (> 50 chip-wide), while with very few sensors Eagle-Eye's
// conservative worst-noise placement can wrong-alarm less.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/eagle_eye.hpp"
#include "core/emergency.hpp"
#include "core/pipeline.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args(
      "fig4_sensor_sweep — Fig. 4: BM4 error rates vs number of sensors, "
      "Eagle-Eye vs proposed");
  benchutil::add_common_flags(args);
  args.add_flag("benchmark", "bm4", "benchmark to evaluate");
  args.add_flag("per-core-counts", "1,2,3,4,6,8,10",
                "comma-separated sensors-per-core sweep");
  args.add_flag("eagle-strategy", "worst-noise",
                "Eagle-Eye placement: worst-noise | coverage");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto platform = benchutil::load_platform(args);
    const auto& data = platform.data;
    const double vth = platform.setup.data.emergency_threshold;
    const std::size_t bench =
        workload::benchmark_index(platform.suite, args.get("benchmark"));
    const linalg::Matrix x_test = data.x_test_for(bench);
    const linalg::Matrix f_test = data.f_test_for(bench);

    std::vector<std::size_t> counts;
    {
      const std::string spec = args.get("per-core-counts");
      std::size_t pos = 0;
      while (pos < spec.size()) {
        std::size_t next = spec.find(',', pos);
        if (next == std::string::npos) next = spec.size();
        counts.push_back(
            static_cast<std::size_t>(std::stoul(spec.substr(pos, next - pos))));
        pos = next + 1;
      }
    }

    core::EagleEyeOptions ee;
    ee.strategy = args.get("eagle-strategy") == "coverage"
                      ? core::EagleEyeStrategy::kGreedyCoverage
                      : core::EagleEyeStrategy::kWorstNoise;

    std::printf("== Fig. 4: %s error rates vs total sensors ==\n",
                data.benchmarks[bench].name.c_str());
    TablePrinter table({"sensors/core", "total", "EE ME", "EE WAE", "EE TE",
                        "our ME", "our WAE", "our TE"});
    // Each sensor-budget point is an independent placement + fit; sweep
    // them concurrently and print in order.
    struct SweepPoint {
      core::ErrorRates eagle, ours;
      std::size_t total_sensors = 0;
    };
    std::vector<SweepPoint> points(counts.size());
    parallel_for(0, counts.size(), [&](std::size_t i) {
      const std::size_t per_core = counts[i];
      const auto eagle_rows =
          core::eagle_eye_place(data, *platform.floorplan, per_core, ee);
      points[i].eagle =
          core::evaluate_sensor_detector(f_test, x_test, eagle_rows, vth);

      core::PipelineConfig config;
      config.lambda = benchutil::scaled_lambda(args, 60.0);
      config.sensors_per_core = per_core;
      const auto model =
          core::fit_placement(data, *platform.floorplan, config);
      points[i].ours = core::evaluate_prediction_detector(
          f_test, model.predict(x_test), vth);
      points[i].total_sensors = model.sensor_rows().size();
    });
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const SweepPoint& p = points[i];
      table.add_row({TablePrinter::fmt(counts[i]),
                     TablePrinter::fmt(p.total_sensors),
                     TablePrinter::fmt(p.eagle.miss_rate(), 4),
                     TablePrinter::fmt(p.eagle.wrong_alarm_rate(), 4),
                     TablePrinter::fmt(p.eagle.total_error_rate(), 4),
                     TablePrinter::fmt(p.ours.miss_rate(), 4),
                     TablePrinter::fmt(p.ours.wrong_alarm_rate(), 4),
                     TablePrinter::fmt(p.ours.total_error_rate(), 4)});
    }
    table.print(std::cout);
    std::printf("\n(paper: proposed ME/TE below Eagle-Eye across the sweep; "
                "WAE advantage flips to the proposed side at larger sensor "
                "counts)\n");

    benchutil::RunReport report("fig4_sensor_sweep");
    report.timing("platform_load", platform.load_ms);
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const std::string tag = "@" + std::to_string(counts[i]);
      report.scalar("total_sensors" + tag,
                    static_cast<double>(points[i].total_sensors));
      report.scalar("ee_te" + tag, points[i].eagle.total_error_rate());
      report.scalar("our_te" + tag, points[i].ours.total_error_rate());
    }
    benchutil::write_report(args, &platform, report);
    benchutil::print_resilience(platform);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
