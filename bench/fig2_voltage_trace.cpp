// Reproduces Fig. 2: predicted vs. simulated voltage at one noise-critical
// node, with 2 and with 7 selected sensors per core.
//
// The paper overlays three traces (real, 2-sensor prediction, 7-sensor
// prediction) over a time window and observes that even two sensors track
// the droops closely, with the 7-sensor model visibly tighter. We use one
// benchmark's held-out test maps (consecutive snapshots of the transient)
// as the time axis, print the series (and optionally CSV), and report
// per-model error statistics.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <utility>

#include "common.hpp"
#include "core/ols_model.hpp"
#include "core/pipeline.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args(
      "fig2_voltage_trace — Fig. 2: predicted vs real voltage trace at one "
      "critical node (2 vs 7 sensors per core)");
  benchutil::add_common_flags(args);
  args.add_flag("benchmark", "bm1", "benchmark supplying the trace window");
  args.add_flag("block", "-1",
                "block id to trace (-1 = the block with the deepest droop)");
  args.add_flag("sensors-few", "2", "sensor count for the small model");
  args.add_flag("sensors-many", "7", "sensor count for the large model");
  args.add_flag("window", "40", "number of consecutive test maps to print");
  args.add_flag("csv", "", "optional CSV output path for the full series");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto platform = benchutil::load_platform(args);
    const auto& data = platform.data;

    const std::size_t bench =
        workload::benchmark_index(platform.suite, args.get("benchmark"));
    const linalg::Matrix x_test = data.x_test_for(bench);
    const linalg::Matrix f_test = data.f_test_for(bench);

    // Fit the two models with fixed per-core sensor budgets.
    auto fit_with = [&](std::size_t per_core) {
      core::PipelineConfig config;
      config.lambda = benchutil::scaled_lambda(args, 60.0);  // loose budget
      config.sensors_per_core = per_core;
      return core::fit_placement(data, *platform.floorplan, config);
    };
    const auto model_few =
        fit_with(static_cast<std::size_t>(args.get_int("sensors-few")));
    const auto model_many =
        fit_with(static_cast<std::size_t>(args.get_int("sensors-many")));

    const linalg::Matrix pred_few = model_few.predict(x_test);
    const linalg::Matrix pred_many = model_many.predict(x_test);

    // Pick the trace block: deepest observed droop by default.
    std::size_t block = 0;
    if (args.get_int("block") >= 0) {
      block = static_cast<std::size_t>(args.get_int("block"));
    } else {
      double worst = 1e300;
      for (std::size_t k = 0; k < f_test.rows(); ++k) {
        const double mn = f_test.row(k).min();
        if (mn < worst) {
          worst = mn;
          block = k;
        }
      }
    }
    const auto& blk = platform.floorplan->block(block);
    std::printf("== Fig. 2: voltage trace at critical node of block %zu "
                "(%s), benchmark %s ==\n",
                block, blk.name.c_str(),
                data.benchmarks[bench].name.c_str());
    std::printf("dt between maps: %.2f ns; VDD = %.2f V; emergency "
                "threshold %.2f V\n\n",
                1e9 * platform.setup.data.dt *
                    static_cast<double>(platform.setup.data.map_stride),
                platform.setup.grid.vdd,
                platform.setup.data.emergency_threshold);

    const std::size_t window = std::min<std::size_t>(
        static_cast<std::size_t>(args.get_int("window")), f_test.cols());
    TablePrinter table({"t(map)", "real(V)", "pred 2 sensors(V)",
                        "pred 7 sensors(V)", "err2(mV)", "err7(mV)"});
    for (std::size_t s = 0; s < window; ++s) {
      const double real = f_test(block, s);
      const double p2 = pred_few(block, s);
      const double p7 = pred_many(block, s);
      table.add_row({TablePrinter::fmt(s), TablePrinter::fmt(real, 4),
                     TablePrinter::fmt(p2, 4), TablePrinter::fmt(p7, 4),
                     TablePrinter::fmt(1e3 * (p2 - real), 2),
                     TablePrinter::fmt(1e3 * (p7 - real), 2)});
    }
    table.print(std::cout);

    // Whole-trace error statistics for the figure's takeaway.
    auto stats = [&](const linalg::Matrix& pred) {
      double max_err = 0.0, sum_abs = 0.0;
      for (std::size_t s = 0; s < f_test.cols(); ++s) {
        const double e = std::abs(pred(block, s) - f_test(block, s));
        max_err = std::max(max_err, e);
        sum_abs += e;
      }
      return std::pair<double, double>(
          max_err, sum_abs / static_cast<double>(f_test.cols()));
    };
    const auto [max2, mean2] = stats(pred_few);
    const auto [max7, mean7] = stats(pred_many);
    std::printf("\nfull-trace stats over %zu maps:\n", f_test.cols());
    std::printf("  %zu sensors/core: mean |err| %.3f mV, max |err| %.3f mV\n",
                model_few.sensor_rows().size() /
                    platform.floorplan->core_count(),
                1e3 * mean2, 1e3 * max2);
    std::printf("  %zu sensors/core: mean |err| %.3f mV, max |err| %.3f mV\n",
                model_many.sensor_rows().size() /
                    platform.floorplan->core_count(),
                1e3 * mean7, 1e3 * max7);
    std::printf("  (paper: prediction error shrinks visibly from 2 to 7 "
                "sensors)\n");

    if (!args.get("csv").empty()) {
      CsvWriter csv(args.get("csv"),
                    {"map", "real_v", "pred2_v", "pred7_v"});
      for (std::size_t s = 0; s < f_test.cols(); ++s)
        csv.add_row(std::vector<double>{static_cast<double>(s),
                                        f_test(block, s), pred_few(block, s),
                                        pred_many(block, s)});
      std::printf("\nwrote %s\n", csv.path().c_str());
    }

    benchutil::RunReport report("fig2_voltage_trace");
    report.scalar("trace_block", static_cast<double>(block));
    report.scalar("mean_abs_err_few_v", mean2);
    report.scalar("max_abs_err_few_v", max2);
    report.scalar("mean_abs_err_many_v", mean7);
    report.scalar("max_abs_err_many_v", max7);
    report.scalar("sensors_few",
                  static_cast<double>(model_few.sensor_rows().size()));
    report.scalar("sensors_many",
                  static_cast<double>(model_many.sensor_rows().size()));
    report.timing("platform_load", platform.load_ms);
    benchutil::write_report(args, &platform, report);
    benchutil::print_resilience(platform);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
