// Chaos harness for the scenario sweep engine.
//
// Proves the supervisor's containment story end-to-end: the same tiny
// scenario matrix is swept once cleanly (the reference), then once per
// chaos mode, and the final aggregate CSV/JSON must be BYTE-IDENTICAL to
// the reference every time:
//   * worker_crash          — every 3rd job's first attempt abort()s;
//   * worker_hang           — every 3rd job's first attempt stalls until
//                             the deadline SIGKILLs it;
//   * worker_garbage_output — every 3rd job's first attempt exits 0 with a
//                             corrupt RESULT line;
//   * supervisor_kill       — the whole supervisor process is SIGKILLed
//                             mid-sweep, then resumed from the journal.
// A mode passes only with zero lost jobs (every scenario completed) and a
// byte-identical report; any divergence fails the bench (and CI).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "sweep/supervisor.hpp"
#include "sweep/telemetry.hpp"
#include "util/table.hpp"

namespace {

using namespace vmap;

sweep::ScenarioMatrix tiny_matrix(std::uint64_t seed) {
  // 3 pad arrangements x 2 workloads = 6 jobs; collection scale trimmed so
  // one job is a couple of seconds, not minutes.
  sweep::ScenarioMatrix matrix;
  matrix.pad_arrangements = {grid::PadArrangement::kSquare,
                             grid::PadArrangement::kTriangular,
                             grid::PadArrangement::kHexagonal};
  matrix.workloads = {"parsec_mini", "idle_wake_storm"};
  matrix.seed = seed;
  matrix.train_maps = 20;
  matrix.test_maps = 10;
  matrix.warmup_steps = 40;
  matrix.calibration_steps = 100;
  return matrix;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

sweep::SweepOptions base_options(const std::string& worker,
                                 const std::string& work_dir,
                                 std::size_t parallel,
                                 sweep::TelemetryMode telemetry) {
  sweep::SweepOptions options;
  options.worker_argv = {worker};
  options.work_dir = work_dir;
  options.parallel = parallel;
  options.deadline_ms = 120000;
  options.max_attempts = 3;
  options.telemetry = telemetry;
  return options;
}

struct ModeOutcome {
  bool ran = false;
  bool csv_match = false;
  bool json_match = false;
  std::size_t lost = 0;
  std::size_t retries = 0;
  std::size_t skipped_resume = 0;
};

/// Runs the supervisor_kill mode: fork a child that starts the sweep fresh,
/// SIGKILL it once the journal shows progress, then resume in-process.
vmap::StatusOr<sweep::SweepResult> run_supervisor_kill(
    const sweep::ScenarioMatrix& matrix, sweep::SweepOptions options) {
  const std::string journal_path = options.work_dir + "/sweep.journal";
  const pid_t child = ::fork();
  if (child < 0) return Status::Io("fork failed for supervisor_kill");
  if (child == 0) {
    // The doomed supervisor. Runs the sweep from scratch; the parent kills
    // us mid-flight (or we finish first — resume still has to hold).
    sweep::SweepSupervisor doomed(matrix, options);
    auto ignored = doomed.run();
    (void)ignored;
    ::_exit(0);
  }
  // Poll the journal until at least one job completed, then SIGKILL.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < deadline) {
    auto replay = sweep::replay_journal(journal_path);
    if (replay.ok() && !replay->completed.empty()) break;
    int status = 0;
    if (::waitpid(child, &status, WNOHANG) == child) {
      // Finished before we could kill it; resume over a complete journal
      // must then skip everything.
      sweep::SweepOptions resumed = options;
      resumed.resume = true;
      return sweep::SweepSupervisor(matrix, resumed).run();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  sweep::SweepOptions resumed = options;
  resumed.resume = true;
  return sweep::SweepSupervisor(matrix, resumed).run();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args("sweep_suite — chaos harness for the scenario sweep engine");
  benchutil::add_common_flags(args);
  args.add_flag("worker", "tools/sweep_worker",
                "path to the sweep_worker binary");
  args.add_flag("inject", "all",
                "chaos mode: none|worker_crash|worker_hang|"
                "worker_garbage_output|supervisor_kill|all");
  args.add_flag("work-dir", "sweep_out", "scratch directory for journals");
  args.add_flag("parallel", "2", "concurrent worker subprocesses");
  args.add_flag("telemetry", "auto",
                "fleet telemetry: auto (follow VMAP_TRACE), on, off. When "
                "active the harness also proves shard-merge determinism "
                "and that quarantined jobs carry flight-recorder tails");
  try {
    if (!args.parse(argc, argv)) return 0;
    const std::string worker = args.get("worker");
    const std::string root = args.get("work-dir");
    const auto parallel =
        static_cast<std::size_t>(args.get_int("parallel"));
    const auto matrix =
        tiny_matrix(static_cast<std::uint64_t>(args.get_int("seed")));

    const std::string telemetry_flag = args.get("telemetry");
    if (telemetry_flag != "auto" && telemetry_flag != "on" &&
        telemetry_flag != "off") {
      std::fprintf(stderr, "error: bad --telemetry value: %s\n",
                   telemetry_flag.c_str());
      return 2;
    }
    const char* trace_env = std::getenv("VMAP_TRACE");
    const bool telemetry_on =
        telemetry_flag == "on" ||
        (telemetry_flag == "auto" && trace_env && *trace_env);
    const sweep::TelemetryMode telemetry =
        telemetry_on ? sweep::TelemetryMode::kOn : sweep::TelemetryMode::kOff;

    std::vector<std::string> modes;
    const std::string inject = args.get("inject");
    if (inject == "all")
      modes = {"worker_crash", "worker_hang", "worker_garbage_output",
               "supervisor_kill"};
    else if (inject != "none")
      modes = {inject};

    // Reference sweep: no chaos. Every mode is byte-compared against it.
    std::filesystem::create_directories(root + "/ref");
    sweep::SweepOptions ref_options =
        base_options(worker, root + "/ref", parallel, telemetry);
    auto ref = sweep::SweepSupervisor(matrix, ref_options).run();
    if (!ref.ok()) {
      std::fprintf(stderr, "error: reference sweep failed: %s\n",
                   ref.status().to_string().c_str());
      return 1;
    }
    const std::string ref_csv = slurp(root + "/ref/sweep_report.csv");
    const std::string ref_json = slurp(root + "/ref/sweep_report.json");
    std::printf("reference: %zu jobs, %zu completed, %zu quarantined\n",
                ref->jobs_total, ref->jobs_completed,
                ref->jobs_quarantined);
    if (ref->jobs_quarantined != 0) {
      std::fprintf(stderr,
                   "error: reference sweep quarantined %zu jobs\n",
                   ref->jobs_quarantined);
      return 1;
    }

    benchutil::RunReport report("sweep_suite");
    report.scalar("jobs", static_cast<double>(ref->jobs_total));
    report.scalar("ref.completed",
                  static_cast<double>(ref->jobs_completed));

    TablePrinter table({"chaos mode", "completed", "lost", "retries",
                        "resumed", "csv", "json"});
    bool all_ok = true;
    for (const std::string& mode : modes) {
      const std::string dir = root + "/" + mode;
      std::filesystem::create_directories(dir);
      sweep::SweepOptions options =
          base_options(worker, dir, parallel, telemetry);
      vmap::StatusOr<sweep::SweepResult> run =
          Status::InvalidArgument("unset");
      if (mode == "supervisor_kill") {
        run = run_supervisor_kill(matrix, options);
      } else {
        options.chaos.mode = mode;
        options.chaos.every_nth = 3;
        run = sweep::SweepSupervisor(matrix, options).run();
      }
      ModeOutcome out;
      if (!run.ok()) {
        std::fprintf(stderr, "error: %s sweep failed: %s\n", mode.c_str(),
                     run.status().to_string().c_str());
        all_ok = false;
      } else {
        out.ran = true;
        out.lost = run->jobs_total - run->jobs_completed;
        out.retries = run->retries_total;
        out.skipped_resume = run->jobs_skipped_resume;
        out.csv_match = slurp(dir + "/sweep_report.csv") == ref_csv;
        out.json_match = slurp(dir + "/sweep_report.json") == ref_json;
        if (!out.csv_match || !out.json_match || out.lost != 0)
          all_ok = false;
        table.add_row({mode, TablePrinter::fmt(run->jobs_completed),
                       TablePrinter::fmt(out.lost),
                       TablePrinter::fmt(out.retries),
                       TablePrinter::fmt(out.skipped_resume),
                       out.csv_match ? "match" : "DIFF",
                       out.json_match ? "match" : "DIFF"});
      }
      report.scalar("match." + mode,
                    (out.csv_match && out.json_match) ? 1.0 : 0.0);
      report.scalar("lost." + mode, static_cast<double>(out.lost));
    }

    // --- telemetry invariants -------------------------------------------
    if (telemetry_on) {
      // Merge determinism: resuming over the finished reference journal
      // re-runs nothing — it re-merges the same shard files — so the
      // merged trace must come back byte-identical.
      const std::string ref_trace = slurp(root + "/ref/sweep_trace.json");
      sweep::SweepOptions remerge = ref_options;
      remerge.resume = true;
      auto resumed = sweep::SweepSupervisor(matrix, remerge).run();
      const bool trace_deterministic =
          resumed.ok() && !ref_trace.empty() &&
          slurp(root + "/ref/sweep_trace.json") == ref_trace &&
          slurp(root + "/ref/sweep_report.json") == ref_json;
      if (!trace_deterministic) {
        std::fprintf(stderr,
                     "error: re-merging the reference shards changed the "
                     "merged trace or report\n");
        all_ok = false;
      }
      report.scalar("trace.deterministic", trace_deterministic ? 1.0 : 0.0);

      // Quarantine flight tails: crash every job's only attempt and
      // require the merged trace to carry each job's flight-recorder
      // events in its quarantine record.
      const std::string fdir = root + "/flight_check";
      std::filesystem::create_directories(fdir);
      sweep::SweepOptions fopts =
          base_options(worker, fdir, parallel, telemetry);
      fopts.max_attempts = 1;
      fopts.chaos.mode = "worker_crash";
      fopts.chaos.every_nth = 1;
      auto fatal = sweep::SweepSupervisor(matrix, fopts).run();
      std::size_t tails = 0;
      bool flight_ok = false;
      if (fatal.ok()) {
        for (std::size_t job = 0; job < fatal->jobs_total; ++job)
          if (!slurp(sweep::flight_path_for_job(fdir, job)).empty()) ++tails;
        const std::string fatal_trace = slurp(fdir + "/sweep_trace.json");
        flight_ok = fatal->jobs_quarantined == fatal->jobs_total &&
                    tails == fatal->jobs_total &&
                    fatal_trace.find("flight_recorder") != std::string::npos &&
                    fatal_trace.find("chaos.inject") != std::string::npos;
      }
      if (!flight_ok) {
        std::fprintf(stderr,
                     "error: quarantined jobs are missing flight-recorder "
                     "tails (%zu of %zu)\n",
                     tails, fatal.ok() ? fatal->jobs_total : 0);
        all_ok = false;
      }
      report.scalar("flight.tails", static_cast<double>(tails));
      report.scalar("flight.ok", flight_ok ? 1.0 : 0.0);
      std::printf("telemetry: merge %s, %zu/%zu quarantine flight tails\n",
                  trace_deterministic ? "deterministic" : "DIVERGED", tails,
                  fatal.ok() ? fatal->jobs_total : 0);
    }

    table.print(std::cout);
    std::printf("\n(every chaos mode must complete all jobs and reproduce "
                "the reference report byte-for-byte)\n");
    benchutil::write_report(args, nullptr, report);
    if (!all_ok) {
      std::fprintf(stderr, "error: chaos sweep diverged from reference\n");
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
