#include "common.hpp"

#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace vmap::benchutil {

void add_common_flags(CliArgs& args) {
  args.add_flag("cache", "vmap_dataset.cache",
                "dataset cache path ('' disables caching)");
  args.add_bool("quick", false,
                "reduced sample counts for fast smoke runs");
  args.add_flag("seed", "20150607", "experiment seed");
  args.add_flag("lambda-scale", "0.10",
                "internal budget per unit of paper lambda");
  args.add_bool("verbose", false, "log collection progress");
  args.add_flag("threads", "0",
                "worker threads for collection/fitting (0 = VMAP_THREADS "
                "env var, else all hardware threads; 1 = serial)");
  args.add_flag("emergency-rate", "0.30",
                "calibrated chip-level emergency base rate (0 = use "
                "--target-droop instead)");
  args.add_flag("target-droop", "0.26",
                "calibrated worst-case droop depth in volts (fallback when "
                "--emergency-rate is 0)");
  args.add_bool("two-layer", false,
                "model a low-resistance top-metal mesh over the device grid "
                "(changes the platform; dataset re-collects)");
  args.add_flag("pad-inductance", "0",
                "package inductance per pad in henries, e.g. 5e-10 "
                "(changes the platform; dataset re-collects)");
}

Platform load_platform(const CliArgs& args) {
  set_log_level(args.get_bool("verbose") ? LogLevel::kInfo : LogLevel::kWarn);
  set_thread_count(static_cast<std::size_t>(args.get_int("threads")));

  Platform platform;
  platform.setup = core::default_setup();
  platform.setup.data.seed =
      static_cast<std::uint64_t>(args.get_int("seed"));
  platform.setup.data.target_emergency_rate =
      args.get_double("emergency-rate");
  platform.setup.data.target_droop = args.get_double("target-droop");
  platform.setup.grid.two_layer = args.get_bool("two-layer");
  platform.setup.grid.pad_inductance = args.get_double("pad-inductance");
  if (args.get_bool("quick")) {
    platform.setup.data.train_maps_per_benchmark = 80;
    platform.setup.data.test_maps_per_benchmark = 40;
    platform.setup.data.warmup_steps = 150;
    platform.setup.data.calibration_steps = 300;
  }

  platform.grid = std::make_unique<grid::PowerGrid>(platform.setup.grid);
  platform.floorplan = std::make_unique<chip::Floorplan>(
      *platform.grid, platform.setup.floorplan);
  platform.suite = workload::parsec_like_suite();

  Timer timer;
  platform.data =
      core::load_or_collect(args.get("cache"), *platform.grid,
                            *platform.floorplan, platform.setup.data,
                            platform.suite, platform.report.get());
  std::fprintf(stderr,
               "[platform] M=%zu candidates, K=%zu blocks, N_train=%zu, "
               "N_test=%zu (%.1f s)\n",
               platform.data.num_candidates(), platform.data.num_blocks(),
               platform.data.x_train.cols(), platform.data.x_test.cols(),
               timer.seconds());
  return platform;
}

void print_resilience(const Platform& platform) {
  if (!platform.report) return;
  if (platform.report->clean()) {
    std::fprintf(stderr, "[resilience] all clean: no retries, fallbacks, or "
                         "recollections\n");
    return;
  }
  std::fprintf(stderr, "[resilience] %s\n",
               platform.report->summary().c_str());
}

double scaled_lambda(const CliArgs& args, double paper_lambda) {
  return paper_lambda * args.get_double("lambda-scale");
}

}  // namespace vmap::benchutil
