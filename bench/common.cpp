#include "common.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "util/flight_recorder.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace vmap::benchutil {

namespace {

volatile std::sig_atomic_t g_flush_entered = 0;

extern "C" void interrupt_flush_handler(int sig) {
  // One shot: a second signal while flushing falls straight through to the
  // default action instead of re-entering the (unsafe) flush path.
  if (!g_flush_entered) {
    g_flush_entered = 1;
    if (trace_enabled()) {
      const Status st = trace_flush();
      std::fprintf(stderr, "[signal] trace %s\n",
                   st.ok() ? "flushed" : st.to_string().c_str());
    }
    std::fprintf(stderr, "[signal] interrupted by signal %d; metrics: %s\n",
                 sig, metrics::snapshot_json().c_str());
    std::fprintf(stderr, "[signal] flight-recorder tail:\n");
    flight::dump(2);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_interrupt_flush() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  std::signal(SIGINT, interrupt_flush_handler);
  std::signal(SIGTERM, interrupt_flush_handler);
  // Fatal-signal dumps (SIGSEGV/SIGABRT) come from the flight recorder:
  // the ring is async-signal dumpable where the trace buffer is not.
  flight::install_crash_dump();
}

void add_common_flags(CliArgs& args) {
  install_interrupt_flush();
  args.add_flag("cache", "vmap_dataset.cache",
                "dataset cache path ('' disables caching)");
  args.add_bool("quick", false,
                "reduced sample counts for fast smoke runs");
  args.add_flag("seed", "20150607", "experiment seed");
  args.add_flag("lambda-scale", "0.10",
                "internal budget per unit of paper lambda");
  args.add_bool("verbose", false, "log collection progress");
  args.add_flag("threads", "0",
                "worker threads for collection/fitting (0 = VMAP_THREADS "
                "env var, else all hardware threads; 1 = serial)");
  args.add_flag("emergency-rate", "0.30",
                "calibrated chip-level emergency base rate (0 = use "
                "--target-droop instead)");
  args.add_flag("target-droop", "0.26",
                "calibrated worst-case droop depth in volts (fallback when "
                "--emergency-rate is 0)");
  args.add_bool("two-layer", false,
                "model a low-resistance top-metal mesh over the device grid "
                "(changes the platform; dataset re-collects)");
  args.add_flag("pad-inductance", "0",
                "package inductance per pad in henries, e.g. 5e-10 "
                "(changes the platform; dataset re-collects)");
  args.add_flag("report", "",
                "write a machine-readable run report (JSON) to this path: "
                "key result scalars, timings, metrics snapshot, resilience "
                "report");
}

Platform load_platform(const CliArgs& args) {
  set_log_level(args.get_bool("verbose") ? LogLevel::kInfo : LogLevel::kWarn);
  set_thread_count(static_cast<std::size_t>(args.get_int("threads")));

  Platform platform;
  platform.setup = core::default_setup();
  platform.setup.data.seed =
      static_cast<std::uint64_t>(args.get_int("seed"));
  platform.setup.data.target_emergency_rate =
      args.get_double("emergency-rate");
  platform.setup.data.target_droop = args.get_double("target-droop");
  platform.setup.grid.two_layer = args.get_bool("two-layer");
  platform.setup.grid.pad_inductance = args.get_double("pad-inductance");
  if (args.get_bool("quick")) {
    platform.setup.data.train_maps_per_benchmark = 80;
    platform.setup.data.test_maps_per_benchmark = 40;
    platform.setup.data.warmup_steps = 150;
    platform.setup.data.calibration_steps = 300;
  }

  platform.grid = std::make_unique<grid::PowerGrid>(platform.setup.grid);
  platform.floorplan = std::make_unique<chip::Floorplan>(
      *platform.grid, platform.setup.floorplan);
  platform.suite = workload::parsec_like_suite();

  Timer timer;
  platform.data =
      core::load_or_collect(args.get("cache"), *platform.grid,
                            *platform.floorplan, platform.setup.data,
                            platform.suite, platform.report.get());
  platform.load_ms = timer.millis();
  std::fprintf(stderr,
               "[platform] M=%zu candidates, K=%zu blocks, N_train=%zu, "
               "N_test=%zu (%.1f s)\n",
               platform.data.num_candidates(), platform.data.num_blocks(),
               platform.data.x_train.cols(), platform.data.x_test.cols(),
               timer.seconds());
  return platform;
}

void print_resilience(const Platform& platform) {
  if (!platform.report) return;
  if (platform.report->clean()) {
    std::fprintf(stderr, "[resilience] all clean: no retries, fallbacks, or "
                         "recollections\n");
    return;
  }
  std::fprintf(stderr, "[resilience] %s\n",
               platform.report->summary().c_str());
}

void add_backend_flags(CliArgs& args) {
  args.add_flag("selection", "group_lasso",
                "sensor-selection backend (see core/backend.hpp; "
                "\"group_lasso\" reproduces the paper)");
  args.add_flag("prediction", "ols",
                "voltage-prediction backend (\"ols\" reproduces the paper, "
                "\"spatial\" is the geometry-feature ridge surrogate)");
}

void apply_backend_flags(const CliArgs& args, core::PipelineConfig& config,
                         RunReport& report) {
  config.selection = args.get("selection");
  config.prediction = args.get("prediction");
  report.tag("selection", config.selection);
  report.tag("prediction", config.prediction);
}

double scaled_lambda(const CliArgs& args, double paper_lambda) {
  return paper_lambda * args.get_double("lambda-scale");
}

namespace {

void json_escape_into(std::string& out, const std::string& in) {
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Full-precision double literal: %.17g round-trips IEEE doubles exactly,
/// which is what lets perf_gate.py hold correctness scalars byte-identical.
std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_pairs(std::string& json,
                  const std::vector<std::pair<std::string, double>>& pairs) {
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i) json += ",";
    json += "\"";
    json_escape_into(json, pairs[i].first);
    json += "\":" + json_number(pairs[i].second);
  }
}

}  // namespace

double calibration_ms() {
  // A serially dependent FMA chain: fixed work, one thread, no memory
  // traffic — proportional to single-core speed on any machine. The
  // volatile sink keeps the loop alive under -O2.
  double best = 0.0;
  for (int run = 0; run < 3; ++run) {
    Timer t;
    double acc = 1.0;
    for (int i = 0; i < 20000000; ++i) acc = acc * 1.0000000001 + 1e-12;
    volatile double sink = acc;
    (void)sink;
    const double ms = t.millis();
    if (run == 0 || ms < best) best = ms;
  }
  return best;
}

void write_report(const CliArgs& args, const Platform* platform,
                  const RunReport& report) {
  const std::string path = args.get("report");
  if (path.empty()) return;

  std::string json = "{\n";
  json += "  \"schema\": 1,\n";
  json += "  \"bench\": \"";
  json_escape_into(json, report.bench);
  json += "\",\n";
  if (platform) {
    char hash[32];
    std::snprintf(hash, sizeof(hash), "0x%016llx",
                  static_cast<unsigned long long>(platform->data.platform));
    json += "  \"platform_hash\": \"" + std::string(hash) + "\",\n";
    json += "  \"seed\": " +
            std::to_string(platform->setup.data.seed) + ",\n";
  }
  json += "  \"threads\": " + std::to_string(thread_count()) + ",\n";
  json += "  \"calibration_ms\": " + json_number(calibration_ms()) + ",\n";

  json += "  \"tags\": {";
  for (std::size_t i = 0; i < report.tags.size(); ++i) {
    if (i) json += ",";
    json += "\"";
    json_escape_into(json, report.tags[i].first);
    json += "\":\"";
    json_escape_into(json, report.tags[i].second);
    json += "\"";
  }
  json += "},\n";

  json += "  \"scalars\": {";
  append_pairs(json, report.scalars);
  json += "},\n";

  json += "  \"timings_ms\": {";
  append_pairs(json, report.timings_ms);
  json += "},\n";

  // Resilience: the counters the gate watches plus the full event list so
  // a degraded run is diagnosable from the artifact alone.
  json += "  \"resilience\": {";
  if (platform && platform->report) {
    const ResilienceReport& r = *platform->report;
    json += "\"clean\": " + std::string(r.clean() ? "true" : "false");
    json += ", \"retries\": " + std::to_string(r.retries());
    json += ", \"fallbacks\": " + std::to_string(r.fallbacks());
    json += ", \"recollects\": " + std::to_string(r.recollects());
    json += ", \"events\": [";
    const auto events = r.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i) json += ",";
      json += "{\"stage\": \"";
      json_escape_into(json, events[i].stage);
      json += "\", \"action\": \"";
      json += resilience_action_name(events[i].action);
      json += "\", \"detail\": \"";
      json_escape_into(json, events[i].detail);
      json += "\"}";
    }
    json += "]";
  } else {
    json += "\"clean\": true, \"retries\": 0, \"fallbacks\": 0, "
            "\"recollects\": 0, \"events\": []";
  }
  json += "},\n";

  json += "  \"metrics\": " + metrics::snapshot_json() + ",\n";

  const char* trace_env = std::getenv("VMAP_TRACE");
  json += "  \"trace\": \"";
  json_escape_into(json, trace_env ? trace_env : "");
  json += "\"\n}\n";

  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write run report: " + path);
  out << json;
  out.flush();
  if (!out) throw std::runtime_error("run report write failed: " + path);
  std::fprintf(stderr, "[report] wrote %s\n", path.c_str());
}

}  // namespace vmap::benchutil
