// Perf regression suite for the parallel execution layer.
//
// Times the four hot operations — full dataset collection, the per-core
// GL+OLS placement fit, transient stepping (inherently sequential; its
// speedup should hover near 1x and any regression is a red flag), and the
// blocked dense matmul — at each requested thread count, prints a speedup
// table, and writes machine-readable BENCH_perf.json so future PRs have a
// perf trajectory to regress against.
//
// Collection and fitting are re-run at every thread count and the results
// are compared against the 1-thread run: the suite FAILS (exit 1) if any
// parallel dataset or model is not bit-identical to the serial one, so the
// perf numbers can never come from a diverging computation.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "chip/floorplan.hpp"
#include "common.hpp"
#include "core/dataset.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "grid/power_grid.hpp"
#include "grid/transient.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/benchmark_suite.hpp"

namespace {

using namespace vmap;

struct Measurement {
  std::string op;
  std::size_t threads = 0;
  double wall_ms = 0.0;   // best of --reps runs of this cell
  double cal_ms = 0.0;    // per-cell calibration probe (machine-speed units)
  double speedup = 1.0;   // vs the baseline cell, calibration-normalized
};

/// Calibration-normalized speedup of `m` against the baseline cell: each
/// cell's wall time is first divided by the calibration probe taken right
/// next to it, so thermal drift or a noisy neighbor between cells cannot
/// fake a regression or mask a win.
double cell_speedup(const Measurement& base, const Measurement& m) {
  if (m.wall_ms <= 0.0 || base.cal_ms <= 0.0) return 1.0;
  const double base_norm = base.wall_ms / base.cal_ms;
  const double norm = m.wall_ms / (m.cal_ms > 0.0 ? m.cal_ms : base.cal_ms);
  return norm > 0.0 ? base_norm / norm : 1.0;
}

/// Runs `body` --reps times and keeps the fastest wall time, with a fresh
/// calibration probe per cell (best-of-N kills one-off scheduler hiccups;
/// the probe anchors the cell to current machine speed).
template <typename Body>
Measurement time_cell(const std::string& op, std::size_t threads, int reps,
                      Body&& body) {
  Measurement m;
  m.op = op;
  m.threads = threads;
  m.cal_ms = benchutil::calibration_ms();
  for (int rep = 0; rep < reps; ++rep) {
    Timer t;
    body();
    const double ms = t.millis();
    if (rep == 0 || ms < m.wall_ms) m.wall_ms = ms;
  }
  return m;
}

std::vector<std::size_t> parse_thread_list(const std::string& spec) {
  std::vector<std::size_t> list;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const unsigned long v = std::stoul(spec.substr(pos, next - pos));
    if (v >= 1) list.push_back(static_cast<std::size_t>(v));
    pos = next + 1;
  }
  return list;
}

bool matrices_identical(const linalg::Matrix& a, const linalg::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     a.rows() * a.cols() * sizeof(double)) == 0;
}

bool datasets_identical(const core::Dataset& a, const core::Dataset& b) {
  return a.platform == b.platform && a.workload_hash == b.workload_hash &&
         a.current_scale == b.current_scale &&
         a.candidate_nodes == b.candidate_nodes &&
         a.critical_nodes == b.critical_nodes &&
         matrices_identical(a.x_train, b.x_train) &&
         matrices_identical(a.f_train, b.f_train) &&
         matrices_identical(a.x_test, b.x_test) &&
         matrices_identical(a.f_test, b.f_test);
}

bool models_identical(const core::PlacementModel& a,
                      const core::PlacementModel& b) {
  if (a.sensor_rows() != b.sensor_rows() ||
      a.cores().size() != b.cores().size())
    return false;
  for (std::size_t c = 0; c < a.cores().size(); ++c) {
    const auto& ca = a.cores()[c];
    const auto& cb = b.cores()[c];
    if (ca.selected_rows != cb.selected_rows ||
        !matrices_identical(ca.alpha, cb.alpha))
      return false;
    for (std::size_t k = 0; k < ca.intercept.size(); ++k)
      if (ca.intercept[k] != cb.intercept[k]) return false;
  }
  return true;
}

void write_json(const std::string& path,
                const std::vector<Measurement>& rows) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char line[200];
    std::snprintf(line, sizeof(line),
                  "  {\"op\": \"%s\", \"threads\": %zu, \"wall_ms\": %.2f, "
                  "\"cal_ms\": %.2f, \"speedup\": %.3f}%s\n",
                  rows[i].op.c_str(), rows[i].threads, rows[i].wall_ms,
                  rows[i].cal_ms, rows[i].speedup,
                  i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(
      "perf_suite — times collection / GL fit / transient stepping / matmul "
      "at several thread counts, checks bit-identity to the serial path, "
      "and writes BENCH_perf.json");
  args.add_flag("threads-list", "",
                "comma-separated thread counts (default: 1,2,<hardware>)");
  args.add_flag("out", "BENCH_perf.json", "output JSON path");
  args.add_flag("report", "",
                "write a machine-readable run report (JSON) to this path: "
                "per-op timings, bit-identity flag, metrics snapshot");
  args.add_bool("full", false,
                "canonical full-size collection (default: reduced maps for "
                "a fast regression run)");
  args.add_flag("seed", "20150607", "experiment seed");
  args.add_flag("transient-steps", "400", "transient stepping workload");
  args.add_flag("matmul-size", "512", "edge N of the N x 4N * 4N x N matmul");
  args.add_flag("reps", "3",
                "runs per (op, threads) cell; the fastest is reported");
  try {
    if (!args.parse(argc, argv)) return 0;
    set_log_level(LogLevel::kWarn);

    std::vector<std::size_t> thread_list;
    if (!args.get("threads-list").empty()) {
      thread_list = parse_thread_list(args.get("threads-list"));
    } else {
      const unsigned hw = std::thread::hardware_concurrency();
      thread_list = {1, 2};
      if (hw > 2) thread_list.push_back(hw);
    }
    if (thread_list.empty() || thread_list.front() != 1)
      thread_list.insert(thread_list.begin(), 1);

    core::ExperimentSetup setup = core::default_setup();
    setup.data.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    if (!args.get_bool("full")) {
      setup.data.train_maps_per_benchmark = 60;
      setup.data.test_maps_per_benchmark = 30;
      setup.data.warmup_steps = 100;
      setup.data.calibration_steps = 200;
    }
    const grid::PowerGrid grid(setup.grid);
    const chip::Floorplan floorplan(grid, setup.floorplan);
    const auto suite = workload::parsec_like_suite();

    const int reps = std::max(1, static_cast<int>(args.get_int("reps")));
    std::vector<Measurement> results;
    bool identical = true;

    // --- dataset collection + placement fit, per thread count ----------
    core::Dataset serial_data;
    Measurement collect1, fit1;
    for (std::size_t threads : thread_list) {
      set_thread_count(threads);

      core::Dataset data;
      Measurement m_collect =
          time_cell("collect", threads, reps, [&] {
            core::DataCollector collector(grid, floorplan, setup.data);
            data = collector.collect(suite);
          });

      core::PipelineConfig pc;
      pc.lambda = 6.0;
      std::optional<core::PlacementModel> model;
      Measurement m_fit = time_cell("gl_fit", threads, reps, [&] {
        model.emplace(core::fit_placement(data, floorplan, pc));
      });

      if (threads == thread_list.front()) {
        collect1 = m_collect;
        fit1 = m_fit;
        serial_data = std::move(data);
      } else {
        if (!datasets_identical(serial_data, data)) {
          std::fprintf(stderr,
                       "FAIL: dataset at %zu threads differs from serial\n",
                       threads);
          identical = false;
        }
        set_thread_count(1);
        const core::PlacementModel serial_model =
            core::fit_placement(serial_data, floorplan, pc);
        set_thread_count(threads);
        if (!models_identical(serial_model, *model)) {
          std::fprintf(stderr,
                       "FAIL: model at %zu threads differs from serial\n",
                       threads);
          identical = false;
        }
      }
      m_collect.speedup = cell_speedup(collect1, m_collect);
      m_fit.speedup = cell_speedup(fit1, m_fit);
      results.push_back(m_collect);
      results.push_back(m_fit);
      std::fprintf(stderr, "[perf] threads=%zu collect %.0f ms, fit %.0f ms\n",
                   threads, m_collect.wall_ms, m_fit.wall_ms);
    }

    // --- transient stepping (sequential by construction) ---------------
    const auto steps =
        static_cast<std::size_t>(args.get_int("transient-steps"));
    Measurement transient1;
    for (std::size_t threads : thread_list) {
      set_thread_count(threads);
      Measurement m = time_cell("transient_step", threads, reps, [&] {
        grid::TransientSim sim(grid, setup.data.dt);
        Rng rng(7);
        linalg::Vector load(grid.node_count());
        for (std::size_t i = 0; i < load.size(); ++i)
          load[i] = rng.bernoulli(0.3) ? 1e-3 : 0.0;
        for (std::size_t s = 0; s < steps; ++s) sim.step(load);
      });
      if (threads == thread_list.front()) transient1 = m;
      m.speedup = cell_speedup(transient1, m);
      results.push_back(m);
    }

    // --- blocked matmul -------------------------------------------------
    const auto n = static_cast<std::size_t>(args.get_int("matmul-size"));
    Rng rng(11);
    linalg::Matrix a(n, 4 * n), b(4 * n, n);
    for (std::size_t i = 0; i < a.rows(); ++i)
      for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = rng.normal();
    for (std::size_t i = 0; i < b.rows(); ++i)
      for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.normal();
    Measurement matmul1;
    for (std::size_t threads : thread_list) {
      set_thread_count(threads);
      Measurement m = time_cell("matmul", threads, reps, [&] {
        const linalg::Matrix c = linalg::matmul(a, b);
        if (c(0, 0) == 12345.0) std::fprintf(stderr, "?");  // keep c alive
      });
      if (threads == thread_list.front()) matmul1 = m;
      m.speedup = cell_speedup(matmul1, m);
      results.push_back(m);
    }
    set_thread_count(0);

    // --- kernel instruction mix -----------------------------------------
    // Scalar vs SIMD vs SIMD+threads per kernel class, so BENCH_perf.json
    // shows *where* scaling is lost: dispatch-level vectorization (the
    // scalar→simd column), thread-level partitioning (simd→simd_mt), or
    // neither (dot/axpy is sequential by contract — its mt column staying
    // flat is expected, not a regression). Speedups are against the scalar
    // cell of the same class, calibration-normalized like every other cell.
    {
      const std::size_t mt = thread_list.back();
      const bool simd_was_enabled = linalg::kern::simd_enabled();
      const std::size_t kn = 256;
      linalg::Matrix ka(kn, 4 * kn), kb(4 * kn, kn);
      linalg::Matrix kx(4 * kn, kn);            // Gram operand (tall)
      linalg::Matrix ks(16 * kn, kn / 2), kw(kn / 2, kn / 2);  // batched predict
      Rng krng(17);
      for (auto* mat : {&ka, &kb, &kx, &ks, &kw})
        for (std::size_t i = 0; i < mat->rows() * mat->cols(); ++i)
          mat->data()[i] = krng.normal();
      std::vector<double> kvx(1 << 15), kvy(1 << 15);
      for (std::size_t i = 0; i < kvx.size(); ++i) {
        kvx[i] = krng.normal();
        kvy[i] = krng.normal();
      }

      volatile double sink = 0.0;
      const auto kernel_bodies = [&](const std::string& cls) {
        return std::function<void()>([&, cls] {
          if (cls == "matmul") {
            const linalg::Matrix c = linalg::matmul(ka, kb);
            sink = c(0, 0);
          } else if (cls == "gram") {
            const linalg::Matrix g = linalg::matmul_at_b(kx, kx);
            sink = g(0, 0);
          } else if (cls == "dot_axpy") {
            double acc = 0.0;
            for (int r = 0; r < 400; ++r) {
              acc += linalg::kern::dot(kvx.size(), kvx.data(), kvy.data());
              linalg::kern::axpy(kvx.size(), 1e-9, kvx.data(), kvy.data());
            }
            sink = acc;
          } else {  // batched_matvec: samples x sensors · (rows x sensors)ᵀ
            const linalg::Matrix p = linalg::matmul_a_bt(ks, kw);
            sink = p(0, 0);
          }
        });
      };
      struct Variant {
        const char* name;
        bool simd;
        std::size_t threads;
      };
      const Variant variants[] = {
          {"scalar", false, 1}, {"simd", true, 1}, {"simd_mt", true, mt}};
      for (const char* cls : {"matmul", "gram", "dot_axpy", "batched_matvec"}) {
        Measurement scalar_cell;
        for (const Variant& v : variants) {
          linalg::kern::set_simd_enabled(v.simd);
          set_thread_count(v.threads);
          Measurement m = time_cell(std::string("kern_") + cls + "_" + v.name,
                                    v.threads, reps, kernel_bodies(cls));
          if (v.threads == 1 && !v.simd) scalar_cell = m;
          m.speedup = cell_speedup(scalar_cell, m);
          results.push_back(m);
        }
      }
      (void)sink;
      linalg::kern::set_simd_enabled(simd_was_enabled);
      set_thread_count(0);
    }

    // --- report ---------------------------------------------------------
    TablePrinter table({"op", "threads", "wall(ms)", "speedup"});
    for (const auto& m : results)
      table.add_row({m.op, TablePrinter::fmt(m.threads),
                     TablePrinter::fmt(m.wall_ms, 1),
                     TablePrinter::fmt(m.speedup, 2)});
    std::printf("== perf suite (bit-identity %s) ==\n",
                identical ? "OK" : "FAILED");
    table.print(std::cout);
    write_json(args.get("out"), results);
    std::printf("\nwrote %s\n", args.get("out").c_str());

    // Run report: every op@threads wall time (gated with the calibration-
    // normalized tolerance) plus bit_identity, which must stay exactly 1.
    benchutil::RunReport report("perf_suite");
    report.scalar("bit_identity", identical ? 1.0 : 0.0);
    report.scalar("thread_counts", static_cast<double>(thread_list.size()));
    for (const auto& m : results)
      report.timing(m.op + "@" + std::to_string(m.threads), m.wall_ms);
    benchutil::write_report(args, nullptr, report);

    if (!identical) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
