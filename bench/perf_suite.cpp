// Perf regression suite for the parallel execution layer.
//
// Times the four hot operations — full dataset collection, the per-core
// GL+OLS placement fit, transient stepping (inherently sequential; its
// speedup should hover near 1x and any regression is a red flag), and the
// blocked dense matmul — at each requested thread count, prints a speedup
// table, and writes machine-readable BENCH_perf.json so future PRs have a
// perf trajectory to regress against.
//
// Collection and fitting are re-run at every thread count and the results
// are compared against the 1-thread run: the suite FAILS (exit 1) if any
// parallel dataset or model is not bit-identical to the serial one, so the
// perf numbers can never come from a diverging computation.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "chip/floorplan.hpp"
#include "common.hpp"
#include "core/dataset.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "grid/power_grid.hpp"
#include "grid/transient.hpp"
#include "linalg/matrix.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/benchmark_suite.hpp"

namespace {

using namespace vmap;

struct Measurement {
  std::string op;
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double speedup = 1.0;  // vs the 1-thread run of the same op
};

std::vector<std::size_t> parse_thread_list(const std::string& spec) {
  std::vector<std::size_t> list;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const unsigned long v = std::stoul(spec.substr(pos, next - pos));
    if (v >= 1) list.push_back(static_cast<std::size_t>(v));
    pos = next + 1;
  }
  return list;
}

bool matrices_identical(const linalg::Matrix& a, const linalg::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     a.rows() * a.cols() * sizeof(double)) == 0;
}

bool datasets_identical(const core::Dataset& a, const core::Dataset& b) {
  return a.platform == b.platform && a.workload_hash == b.workload_hash &&
         a.current_scale == b.current_scale &&
         a.candidate_nodes == b.candidate_nodes &&
         a.critical_nodes == b.critical_nodes &&
         matrices_identical(a.x_train, b.x_train) &&
         matrices_identical(a.f_train, b.f_train) &&
         matrices_identical(a.x_test, b.x_test) &&
         matrices_identical(a.f_test, b.f_test);
}

bool models_identical(const core::PlacementModel& a,
                      const core::PlacementModel& b) {
  if (a.sensor_rows() != b.sensor_rows() ||
      a.cores().size() != b.cores().size())
    return false;
  for (std::size_t c = 0; c < a.cores().size(); ++c) {
    const auto& ca = a.cores()[c];
    const auto& cb = b.cores()[c];
    if (ca.selected_rows != cb.selected_rows ||
        !matrices_identical(ca.alpha, cb.alpha))
      return false;
    for (std::size_t k = 0; k < ca.intercept.size(); ++k)
      if (ca.intercept[k] != cb.intercept[k]) return false;
  }
  return true;
}

void write_json(const std::string& path,
                const std::vector<Measurement>& rows) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  {\"op\": \"%s\", \"threads\": %zu, \"wall_ms\": %.2f, "
                  "\"speedup\": %.3f}%s\n",
                  rows[i].op.c_str(), rows[i].threads, rows[i].wall_ms,
                  rows[i].speedup, i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(
      "perf_suite — times collection / GL fit / transient stepping / matmul "
      "at several thread counts, checks bit-identity to the serial path, "
      "and writes BENCH_perf.json");
  args.add_flag("threads-list", "",
                "comma-separated thread counts (default: 1,2,<hardware>)");
  args.add_flag("out", "BENCH_perf.json", "output JSON path");
  args.add_flag("report", "",
                "write a machine-readable run report (JSON) to this path: "
                "per-op timings, bit-identity flag, metrics snapshot");
  args.add_bool("full", false,
                "canonical full-size collection (default: reduced maps for "
                "a fast regression run)");
  args.add_flag("seed", "20150607", "experiment seed");
  args.add_flag("transient-steps", "400", "transient stepping workload");
  args.add_flag("matmul-size", "512", "edge N of the N x 4N * 4N x N matmul");
  try {
    if (!args.parse(argc, argv)) return 0;
    set_log_level(LogLevel::kWarn);

    std::vector<std::size_t> thread_list;
    if (!args.get("threads-list").empty()) {
      thread_list = parse_thread_list(args.get("threads-list"));
    } else {
      const unsigned hw = std::thread::hardware_concurrency();
      thread_list = {1, 2};
      if (hw > 2) thread_list.push_back(hw);
    }
    if (thread_list.empty() || thread_list.front() != 1)
      thread_list.insert(thread_list.begin(), 1);

    core::ExperimentSetup setup = core::default_setup();
    setup.data.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    if (!args.get_bool("full")) {
      setup.data.train_maps_per_benchmark = 60;
      setup.data.test_maps_per_benchmark = 30;
      setup.data.warmup_steps = 100;
      setup.data.calibration_steps = 200;
    }
    const grid::PowerGrid grid(setup.grid);
    const chip::Floorplan floorplan(grid, setup.floorplan);
    const auto suite = workload::parsec_like_suite();

    std::vector<Measurement> results;
    bool identical = true;

    // --- dataset collection + placement fit, per thread count ----------
    core::Dataset serial_data;
    double collect_ms1 = 0.0, fit_ms1 = 0.0;
    for (std::size_t threads : thread_list) {
      set_thread_count(threads);

      Timer t_collect;
      core::DataCollector collector(grid, floorplan, setup.data);
      core::Dataset data = collector.collect(suite);
      const double collect_ms = t_collect.millis();

      Timer t_fit;
      core::PipelineConfig pc;
      pc.lambda = 6.0;
      const core::PlacementModel model =
          core::fit_placement(data, floorplan, pc);
      const double fit_ms = t_fit.millis();

      if (threads == thread_list.front()) {
        collect_ms1 = collect_ms;
        fit_ms1 = fit_ms;
        serial_data = std::move(data);
      } else {
        if (!datasets_identical(serial_data, data)) {
          std::fprintf(stderr,
                       "FAIL: dataset at %zu threads differs from serial\n",
                       threads);
          identical = false;
        }
        set_thread_count(1);
        const core::PlacementModel serial_model =
            core::fit_placement(serial_data, floorplan, pc);
        set_thread_count(threads);
        if (!models_identical(serial_model, model)) {
          std::fprintf(stderr,
                       "FAIL: model at %zu threads differs from serial\n",
                       threads);
          identical = false;
        }
      }
      results.push_back({"collect", threads, collect_ms,
                         collect_ms > 0.0 ? collect_ms1 / collect_ms : 1.0});
      results.push_back(
          {"gl_fit", threads, fit_ms, fit_ms > 0.0 ? fit_ms1 / fit_ms : 1.0});
      std::fprintf(stderr, "[perf] threads=%zu collect %.0f ms, fit %.0f ms\n",
                   threads, collect_ms, fit_ms);
    }

    // --- transient stepping (sequential by construction) ---------------
    const auto steps =
        static_cast<std::size_t>(args.get_int("transient-steps"));
    double transient_ms1 = 0.0;
    for (std::size_t threads : thread_list) {
      set_thread_count(threads);
      grid::TransientSim sim(grid, setup.data.dt);
      Rng rng(7);
      linalg::Vector load(grid.node_count());
      for (std::size_t i = 0; i < load.size(); ++i)
        load[i] = rng.bernoulli(0.3) ? 1e-3 : 0.0;
      Timer t;
      for (std::size_t s = 0; s < steps; ++s) sim.step(load);
      const double ms = t.millis();
      if (threads == thread_list.front()) transient_ms1 = ms;
      results.push_back({"transient_step", threads, ms,
                         ms > 0.0 ? transient_ms1 / ms : 1.0});
    }

    // --- blocked matmul -------------------------------------------------
    const auto n = static_cast<std::size_t>(args.get_int("matmul-size"));
    Rng rng(11);
    linalg::Matrix a(n, 4 * n), b(4 * n, n);
    for (std::size_t i = 0; i < a.rows(); ++i)
      for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = rng.normal();
    for (std::size_t i = 0; i < b.rows(); ++i)
      for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.normal();
    double matmul_ms1 = 0.0;
    for (std::size_t threads : thread_list) {
      set_thread_count(threads);
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        Timer t;
        const linalg::Matrix c = linalg::matmul(a, b);
        const double ms = t.millis();
        if (rep == 0 || ms < best) best = ms;
        if (c(0, 0) == 12345.0) std::fprintf(stderr, "?");  // keep c alive
      }
      if (threads == thread_list.front()) matmul_ms1 = best;
      results.push_back(
          {"matmul", threads, best, best > 0.0 ? matmul_ms1 / best : 1.0});
    }
    set_thread_count(0);

    // --- report ---------------------------------------------------------
    TablePrinter table({"op", "threads", "wall(ms)", "speedup"});
    for (const auto& m : results)
      table.add_row({m.op, TablePrinter::fmt(m.threads),
                     TablePrinter::fmt(m.wall_ms, 1),
                     TablePrinter::fmt(m.speedup, 2)});
    std::printf("== perf suite (bit-identity %s) ==\n",
                identical ? "OK" : "FAILED");
    table.print(std::cout);
    write_json(args.get("out"), results);
    std::printf("\nwrote %s\n", args.get("out").c_str());

    // Run report: every op@threads wall time (gated with the calibration-
    // normalized tolerance) plus bit_identity, which must stay exactly 1.
    benchutil::RunReport report("perf_suite");
    report.scalar("bit_identity", identical ? 1.0 : 0.0);
    report.scalar("thread_counts", static_cast<double>(thread_list.size()));
    for (const auto& m : results)
      report.timing(m.op + "@" + std::to_string(m.threads), m.wall_ms);
    benchutil::write_report(args, nullptr, report);

    if (!identical) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
