// Reproduces Table 1: λ vs. the number of selected sensors per core and
// the aggregated relative prediction error.
//
// Paper reference (22nm 8-core Xeon-like platform, T = 1e-3):
//   λ                      10    20    30    40    50    60
//   # sensors (per core)    2     4     7    10    13    16
//   relative error (%)    0.51  0.25  0.11  0.06  0.05  0.04
//
// We sweep the same paper-λ grid (converted to the internal budget via
// --lambda-scale), fit the full per-core GL + OLS pipeline at each point,
// and report the average per-core sensor count and the aggregated relative
// prediction error over all function blocks, benchmarks, and test maps.
// The --no-refit flag ablates the §2.3 OLS refit (predicting straight from
// the shrunk GL coefficients) to expose the bias the paper argues against.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/ols_model.hpp"
#include "core/pipeline.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args(
      "table1_lambda_sweep — Table 1: lambda vs sensors/core vs relative "
      "prediction error");
  benchutil::add_common_flags(args);
  args.add_flag("lambdas", "10,20,30,40,50,60", "comma-separated paper λs");
  args.add_bool("no-refit", false,
                "ablation: skip the OLS refit, predict from GL coefficients");
  args.add_flag("threshold", "1e-3", "selection threshold T");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto platform = benchutil::load_platform(args);

    std::vector<double> lambdas;
    {
      const std::string spec = args.get("lambdas");
      std::size_t pos = 0;
      while (pos < spec.size()) {
        std::size_t next = spec.find(',', pos);
        if (next == std::string::npos) next = spec.size();
        lambdas.push_back(std::stod(spec.substr(pos, next - pos)));
        pos = next + 1;
      }
    }

    std::printf("== Table 1: lambda vs #sensors per core vs aggregated "
                "relative prediction error ==\n");
    std::printf("(paper: 2/4/7/10/13/16 sensors, 0.51%%..0.04%% error for "
                "lambda 10..60)\n\n");

    TablePrinter table({"lambda", "budget", "#sensors/core", "#sensors total",
                        "rel error(%)", "rmse(mV)", "fit time(s)"});
    // The λ points are independent fits over the same dataset; run them
    // concurrently and emit the rows in sweep order afterwards.
    struct SweepPoint {
      double budget = 0.0, rel = 0.0, rms = 0.0, fit_seconds = 0.0;
      std::size_t sensors = 0;
    };
    std::vector<SweepPoint> points(lambdas.size());
    parallel_for(0, lambdas.size(), [&](std::size_t i) {
      Timer timer;
      core::PipelineConfig config;
      config.lambda = benchutil::scaled_lambda(args, lambdas[i]);
      config.threshold = args.get_double("threshold");
      config.refit_ols = !args.get_bool("no-refit");
      const auto model =
          core::fit_placement(platform.data, *platform.floorplan, config);
      points[i].fit_seconds = timer.seconds();

      const linalg::Matrix f_pred = model.predict(platform.data.x_test);
      points[i].budget = config.lambda;
      points[i].rel = core::relative_error(platform.data.f_test, f_pred);
      points[i].rms = core::rmse(platform.data.f_test, f_pred);
      points[i].sensors = model.sensor_rows().size();
    });
    for (std::size_t i = 0; i < lambdas.size(); ++i) {
      const SweepPoint& p = points[i];
      const double per_core =
          static_cast<double>(p.sensors) /
          static_cast<double>(platform.floorplan->core_count());
      table.add_row({TablePrinter::fmt(lambdas[i], 0),
                     TablePrinter::fmt(p.budget, 2),
                     TablePrinter::fmt(per_core, 1),
                     TablePrinter::fmt(p.sensors),
                     TablePrinter::fmt(100.0 * p.rel, 3),
                     TablePrinter::fmt(1e3 * p.rms, 2),
                     TablePrinter::fmt(p.fit_seconds, 1)});
    }
    table.print(std::cout);
    if (args.get_bool("no-refit")) {
      std::printf("\n(ablation: OLS refit disabled — §2.3 predicts these "
                  "errors are worse than the refit run)\n");
    }

    benchutil::RunReport report("table1_lambda_sweep");
    report.timing("platform_load", platform.load_ms);
    for (std::size_t i = 0; i < lambdas.size(); ++i) {
      const std::string tag = TablePrinter::fmt(lambdas[i], 0);
      report.scalar("sensors@" + tag,
                    static_cast<double>(points[i].sensors));
      report.scalar("rel_err@" + tag, points[i].rel);
      report.scalar("rmse@" + tag, points[i].rms);
      report.timing("fit@" + tag, 1e3 * points[i].fit_seconds);
    }
    benchutil::write_report(args, &platform, report);
    benchutil::print_resilience(platform);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
