// Validates the paper's premise (§1, citing Wang et al. [13]): "the noise
// in the local area of a power grid is highly correlated".
//
// Prints the measured correlation-vs-distance decay profile of the
// collected voltage maps and, per unit kind, how strong the best
// achievable candidate-to-critical-node correlation is — the quantities
// the whole placement methodology stands on.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/correlation_map.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args(
      "premise_correlation — correlation-vs-distance profile of grid noise");
  benchutil::add_common_flags(args);
  args.add_flag("bins", "12", "distance bins");
  args.add_flag("pairs", "20000", "candidate pairs to sample");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto platform = benchutil::load_platform(args);
    const auto& data = platform.data;

    const auto profile = core::correlation_vs_distance(
        data, *platform.grid, static_cast<std::size_t>(args.get_int("bins")),
        static_cast<std::size_t>(args.get_int("pairs")));

    std::printf("== candidate-pair voltage correlation vs distance ==\n");
    TablePrinter table({"distance (um)", "pairs", "mean corr", "min corr",
                        "profile"});
    for (std::size_t b = 0; b < profile.bin_edges_um.size(); ++b) {
      if (profile.pair_count[b] == 0) continue;
      std::string bar;
      const int len =
          static_cast<int>(std::max(0.0, profile.mean_correlation[b]) * 50);
      for (int i = 0; i < len; ++i) bar.push_back('#');
      table.add_row({"<= " + TablePrinter::fmt(profile.bin_edges_um[b], 0),
                     TablePrinter::fmt(profile.pair_count[b]),
                     TablePrinter::fmt(profile.mean_correlation[b], 3),
                     TablePrinter::fmt(profile.min_correlation[b], 3), bar});
    }
    table.print(std::cout);

    const auto best = core::best_candidate_per_critical(data, *platform.grid);
    double min_best = 2.0, sum_best = 0.0, max_distance = 0.0;
    for (const auto& entry : best) {
      min_best = std::min(min_best, entry.correlation);
      sum_best += entry.correlation;
      max_distance = std::max(max_distance, entry.distance_um);
    }
    std::printf("\n== best candidate per critical node (K = %zu) ==\n",
                best.size());
    std::printf("  correlation: mean %.4f, worst %.4f\n",
                sum_best / static_cast<double>(best.size()), min_best);
    std::printf("  farthest best-candidate distance: %.0f um\n",
                max_distance);
    std::printf("\n(premise holds when near-distance correlation is ~1 and "
                "every critical node has a strongly correlated candidate "
                "nearby)\n");

    benchutil::RunReport report("premise_correlation");
    report.scalar("mean_best_corr",
                  sum_best / static_cast<double>(best.size()));
    report.scalar("worst_best_corr", min_best);
    report.scalar("max_best_distance_um", max_distance);
    report.timing("platform_load", platform.load_ms);
    benchutil::write_report(args, &platform, report);
    benchutil::print_resilience(platform);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
