// Extension study from the paper's §3.2 closing remark: "it is possible
// for the designers to place the sensors inside the function area, to
// further improve the prediction accuracy".
//
// Collects a second dataset whose candidate set includes FA nodes, fits
// the same pipeline at several budgets, and compares against the BA-only
// placement. Also reports how many of the selected sensors actually land
// inside the FA when given the choice.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/emergency.hpp"
#include "core/ols_model.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args("fa_sensors — §3.2 extension: allow sensors inside the FA");
  benchutil::add_common_flags(args);
  args.add_flag("fa-cache", "vmap_dataset_fa.cache",
                "cache path for the FA-candidate dataset");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto platform = benchutil::load_platform(args);

    // Second dataset: identical configuration, candidates include FA.
    core::DataConfig fa_config = platform.setup.data;
    fa_config.include_fa_candidates = true;
    const core::Dataset fa_data =
        core::load_or_collect(args.get("fa-cache"), *platform.grid,
                              *platform.floorplan, fa_config, platform.suite);
    const double vth = platform.setup.data.emergency_threshold;

    std::printf("== FA sensors: BA-only (paper's constraint) vs BA+FA "
                "candidates ==\n");
    std::printf("BA-only candidates: %zu; BA+FA candidates: %zu\n\n",
                platform.data.num_candidates(), fa_data.num_candidates());

    benchutil::RunReport report("fa_sensors");
    report.scalar("ba_candidates",
                  static_cast<double>(platform.data.num_candidates()));
    report.scalar("ba_fa_candidates",
                  static_cast<double>(fa_data.num_candidates()));
    report.timing("platform_load", platform.load_ms);
    TablePrinter table({"sensors/core", "BA rel err(%)", "BA TE",
                        "BA+FA rel err(%)", "BA+FA TE", "#FA picked"});
    for (std::size_t per_core : {2, 4, 7}) {
      core::PipelineConfig config;
      config.lambda = 6.0;
      config.sensors_per_core = per_core;

      const auto ba_model =
          core::fit_placement(platform.data, *platform.floorplan, config);
      const auto ba_pred = ba_model.predict(platform.data.x_test);
      const auto ba_rates = core::evaluate_prediction_detector(
          platform.data.f_test, ba_pred, vth);

      const auto fa_model =
          core::fit_placement(fa_data, *platform.floorplan, config);
      const auto fa_pred = fa_model.predict(fa_data.x_test);
      const auto fa_rates =
          core::evaluate_prediction_detector(fa_data.f_test, fa_pred, vth);

      std::size_t fa_picked = 0;
      for (std::size_t node : fa_model.sensor_nodes())
        if (platform.floorplan->is_fa_node(node)) ++fa_picked;

      const std::string tag = "@" + std::to_string(per_core);
      report.scalar("ba_rel_err" + tag,
                    core::relative_error(platform.data.f_test, ba_pred));
      report.scalar("ba_te" + tag, ba_rates.total_error_rate());
      report.scalar("fa_rel_err" + tag,
                    core::relative_error(fa_data.f_test, fa_pred));
      report.scalar("fa_te" + tag, fa_rates.total_error_rate());
      report.scalar("fa_picked" + tag, static_cast<double>(fa_picked));
      table.add_row(
          {TablePrinter::fmt(per_core),
           TablePrinter::fmt(
               100.0 * core::relative_error(platform.data.f_test, ba_pred),
               3),
           TablePrinter::fmt(ba_rates.total_error_rate(), 4),
           TablePrinter::fmt(
               100.0 * core::relative_error(fa_data.f_test, fa_pred), 3),
           TablePrinter::fmt(fa_rates.total_error_rate(), 4),
           TablePrinter::fmt(fa_picked)});
    }
    table.print(std::cout);
    std::printf("\n(the selector takes FA nodes eagerly when offered; the "
                "benefit the paper predicts materializes once the budget is "
                "large enough for per-block coverage — at tight budgets a "
                "BA channel node that aggregates several neighbouring "
                "blocks can be the stronger regressor)\n");
    benchutil::write_report(args, &platform, report);
    benchutil::print_resilience(platform);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
