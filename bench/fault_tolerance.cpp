// Fault-tolerance study: what does a broken sensor cost?
//
// The paper's runtime story assumes every placed sensor reports forever.
// With Q ≈ 2-16 sensors per chip, one stuck or dead sensor corrupts every
// predicted block voltage and can mask real emergencies. This bench injects
// each fault of the taxonomy (stuck-at, dead, drift, intermittent, spike)
// into one placed sensor mid-stream and compares, per fault:
//   * detection OFF — the base model keeps multiplying garbage readings;
//   * detection ON  — the cross-prediction fault detector flags the sensor
//     and the monitor swaps in the leave-one-out fallback refit.
// The headline: a detected dead sensor costs roughly one fallback refit of
// accuracy (TE barely moves) instead of the catastrophic total-error of the
// undetected case. The no-fault path is also checked to be bit-identical
// with and without the fault-tolerance machinery engaged.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/degraded_model.hpp"
#include "core/emergency.hpp"
#include "core/fault_detector.hpp"
#include "core/fault_injection.hpp"
#include "core/online_monitor.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

namespace {

using namespace vmap;

struct StreamResult {
  core::ErrorRates rates;
  std::size_t degraded_samples = 0;
  std::size_t degraded_episodes = 0;
  long long detect_latency = -1;  ///< samples from onset to first flag
};

/// Streams the test columns through a detector-off base model.
StreamResult run_plain(const core::PlacementModel& model,
                       const linalg::Matrix& x_sensors,
                       const linalg::Matrix& f_true,
                       const core::SensorFaultModel& faults, double vth) {
  StreamResult result;
  core::FaultInjector injector(faults, x_sensors.rows());
  linalg::Vector readings(x_sensors.rows());
  for (std::size_t s = 0; s < x_sensors.cols(); ++s) {
    for (std::size_t r = 0; r < x_sensors.rows(); ++r)
      readings[r] = x_sensors(r, s);
    injector.apply(s, readings);
    const linalg::Vector pred = model.predict_from_sensor_readings(readings);
    const bool alarm = pred.min() < vth;
    const bool truth = f_true.col(s).min() < vth;
    ++result.rates.samples;
    if (truth) {
      ++result.rates.emergencies;
      if (!alarm) ++result.rates.misses;
    } else if (alarm) {
      ++result.rates.wrong_alarms;
    }
  }
  return result;
}

/// Streams the test columns through the fault-tolerant monitor.
StreamResult run_tolerant(core::OnlineMonitor& monitor,
                          const linalg::Matrix& x_sensors,
                          const linalg::Matrix& f_true,
                          const core::SensorFaultModel& faults,
                          std::size_t onset, double vth) {
  StreamResult result;
  core::FaultInjector injector(faults, x_sensors.rows());
  linalg::Vector readings(x_sensors.rows());
  for (std::size_t s = 0; s < x_sensors.cols(); ++s) {
    for (std::size_t r = 0; r < x_sensors.rows(); ++r)
      readings[r] = x_sensors(r, s);
    injector.apply(s, readings);
    const auto decision = monitor.observe(readings);
    if (decision.faulty_sensors > 0 && result.detect_latency < 0)
      result.detect_latency =
          static_cast<long long>(s) - static_cast<long long>(onset);
    const bool truth = f_true.col(s).min() < vth;
    ++result.rates.samples;
    if (truth) {
      ++result.rates.emergencies;
      if (!decision.crossing) ++result.rates.misses;
    } else if (decision.crossing) {
      ++result.rates.wrong_alarms;
    }
  }
  result.degraded_samples = monitor.degraded_samples();
  result.degraded_episodes = monitor.degraded_episodes();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args(
      "fault_tolerance — ME/WAE/TE under sensor faults, with and without "
      "online fault detection + graceful model degradation");
  benchutil::add_common_flags(args);
  args.add_flag("sensors", "4", "sensors per core");
  args.add_flag("z-threshold", "8", "detector residual z-score bound");
  args.add_flag("flag-consecutive", "5",
                "out-of-bound samples before a sensor is flagged");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto platform = benchutil::load_platform(args);
    const auto& data = platform.data;
    const double vth = platform.setup.data.emergency_threshold;

    core::PipelineConfig config;
    config.lambda = 6.0;
    config.sensors_per_core =
        static_cast<std::size_t>(args.get_int("sensors"));
    const auto model = core::fit_placement(data, *platform.floorplan, config);
    const auto& rows = model.sensor_rows();
    const linalg::Matrix x_train = data.x_train.select_rows(rows);
    const linalg::Matrix x_test = data.x_test.select_rows(rows);
    const std::size_t q = rows.size();

    core::FaultDetectorConfig dc;
    dc.z_threshold = args.get_double("z-threshold");
    dc.flag_consecutive =
        static_cast<std::size_t>(args.get_int("flag-consecutive"));
    const core::SensorFaultDetector detector(x_train, dc);
    core::DegradedModelBank bank(model, data.x_train, data.f_train);

    core::OnlineMonitorConfig mc;
    mc.emergency_threshold = vth;  // per-sample decisions: no debounce, so
    mc.alarm_consecutive = 1;      // rates are comparable to the plain path
    mc.release_consecutive = 1;

    // Sanity gate: with no fault, the fault-tolerant monitor must produce
    // bit-identical predictions to the raw model (fault tolerance is free
    // until a fault is flagged).
    {
      core::OnlineMonitor ft(model, mc, detector, bank);
      double max_diff = 0.0;
      linalg::Vector readings(q);
      for (std::size_t s = 0; s < x_test.cols(); ++s) {
        for (std::size_t r = 0; r < q; ++r) readings[r] = x_test(r, s);
        const auto decision = ft.observe(readings);
        const linalg::Vector base =
            model.predict_from_sensor_readings(readings);
        for (std::size_t k = 0; k < base.size(); ++k)
          max_diff =
              std::max(max_diff, std::abs(decision.predicted[k] - base[k]));
      }
      std::printf("no-fault path: max |FT - base| prediction difference = "
                  "%g V (%s), degraded samples = %zu\n\n",
                  max_diff, max_diff == 0.0 ? "bit-identical" : "MISMATCH",
                  ft.degraded_samples());
      if (max_diff != 0.0 || ft.degraded_samples() != 0) {
        std::fprintf(stderr,
                     "error: fault-tolerant no-fault path diverged\n");
        return 1;
      }
    }

    // One mid-list sensor fails at 25% of the online stream and never
    // recovers (duration 0 = permanent).
    const std::size_t victim = q / 2;
    const std::size_t onset = x_test.cols() / 4;
    const double victim_mean = [&] {
      double acc = 0.0;
      for (std::size_t s = 0; s < x_train.cols(); ++s)
        acc += x_train(victim, s);
      return acc / static_cast<double>(x_train.cols());
    }();

    struct Scenario {
      const char* name;
      core::SensorFaultModel faults;
    };
    std::vector<Scenario> scenarios;
    scenarios.push_back({"none", {}});
    {
      core::SensorFaultModel m;
      m.faults.push_back(core::SensorFault::dead(victim, onset));
      scenarios.push_back({"dead (0 V rail)", m});
    }
    {
      core::SensorFaultModel m;
      m.faults.push_back(
          core::SensorFault::stuck_at(victim, victim_mean, onset));
      scenarios.push_back({"stuck-at mean", m});
    }
    {
      core::SensorFaultModel m;
      m.faults.push_back(core::SensorFault::drift(victim, -0.5e-3, onset));
      scenarios.push_back({"drift -0.5 mV/step", m});
    }
    {
      core::SensorFaultModel m;
      m.faults.push_back(core::SensorFault::intermittent(victim, 0.3, onset));
      scenarios.push_back({"intermittent p=0.3", m});
    }
    {
      core::SensorFaultModel m;
      m.faults.push_back(
          core::SensorFault::spike(victim, -60e-3, 0.05, onset));
      scenarios.push_back({"spike -60 mV p=0.05", m});
    }

    std::printf("== fault tolerance: %zu sensors, victim sensor %zu, fault "
                "onset at sample %zu of %zu ==\n",
                q, victim, onset, x_test.cols());
    benchutil::RunReport run_report("fault_tolerance");
    run_report.scalar("sensors_placed", static_cast<double>(q));
    run_report.timing("platform_load", platform.load_ms);
    TablePrinter table({"fault", "detect", "ME", "WAE", "TE",
                        "degraded smp", "episodes", "latency"});
    double te_dead_off = -1.0, te_dead_on = -1.0;
    std::size_t scenario_index = 0;
    for (const auto& scenario : scenarios) {
      const StreamResult off =
          run_plain(model, x_test, data.f_test, scenario.faults, vth);
      core::OnlineMonitor monitor(model, mc, detector, bank);
      const StreamResult on = run_tolerant(monitor, x_test, data.f_test,
                                           scenario.faults, onset, vth);
      if (std::string(scenario.name).rfind("dead", 0) == 0) {
        te_dead_off = off.rates.total_error_rate();
        te_dead_on = on.rates.total_error_rate();
      }
      const std::string tag = "@" + std::to_string(scenario_index++);
      run_report.scalar("te_off" + tag, off.rates.total_error_rate());
      run_report.scalar("te_on" + tag, on.rates.total_error_rate());
      table.add_row({scenario.name, "off",
                     TablePrinter::fmt(off.rates.miss_rate(), 4),
                     TablePrinter::fmt(off.rates.wrong_alarm_rate(), 4),
                     TablePrinter::fmt(off.rates.total_error_rate(), 4), "-",
                     "-", "-"});
      table.add_row(
          {"", "on", TablePrinter::fmt(on.rates.miss_rate(), 4),
           TablePrinter::fmt(on.rates.wrong_alarm_rate(), 4),
           TablePrinter::fmt(on.rates.total_error_rate(), 4),
           TablePrinter::fmt(on.degraded_samples),
           TablePrinter::fmt(on.degraded_episodes),
           on.detect_latency < 0
               ? std::string("n/a")
               : std::to_string(on.detect_latency) + " smp"});
    }
    table.print(std::cout);

    if (te_dead_off >= 0.0 && te_dead_on < te_dead_off) {
      std::printf("\ndead-sensor TE: %.4f undetected -> %.4f with detection "
                  "+ degradation (a detected dead sensor costs one fallback "
                  "refit of accuracy, not the chip)\n",
                  te_dead_off, te_dead_on);
    } else {
      std::fprintf(stderr,
                   "error: detection+degradation did not beat detection-off "
                   "under the dead-sensor fault (%.4f vs %.4f)\n",
                   te_dead_on, te_dead_off);
      return 1;
    }
    run_report.scalar("te_dead_off", te_dead_off);
    run_report.scalar("te_dead_on", te_dead_on);
    benchutil::write_report(args, &platform, run_report);
    benchutil::print_resilience(platform);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
