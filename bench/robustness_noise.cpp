// Robustness study: how much of the methodology survives realistic
// sensors?
//
// The paper evaluates with ideal sensor readings. Here the placed sensors
// are degraded with ADC quantization, thermal noise, and per-instance
// offsets; two training regimes are compared at every noise level:
//   * clean-trained  — the design-time model sees ideal simulations and is
//                      surprised by noise at runtime;
//   * noise-trained  — the refit is performed on noisy readings, letting
//                      OLS absorb the noise statistics.
//
// --inject switches to the runtime fault-injection suite instead: each
// scenario damages one pipeline input (cache bytes, trace files, solver
// budgets) and checks that the resilience layer detects it, recovers
// through the documented fallback, and lands within 1e-9 of the clean
// run's result.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>

#include "common.hpp"
#include "core/emergency.hpp"
#include "core/ols_model.hpp"
#include "core/pipeline.hpp"
#include "core/sensor_noise.hpp"
#include "grid/transient.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace vmap;

/// Reference pipeline result for the injection suite: fixed-budget fit on
/// the (tiny) dataset, scored by the Table 2 metric.
double placement_te(const core::Dataset& data, const chip::Floorplan& plan,
                    double vth) {
  core::PipelineConfig config;
  config.lambda = 6.0;
  config.sensors_per_core = 2;
  const auto model = core::fit_placement(data, plan, config);
  const auto rates = core::evaluate_prediction_detector(
      data.f_test, model.predict(data.x_test), vth);
  return rates.total_error_rate();
}

int run_injection() {
  namespace fs = std::filesystem;
  set_log_level(LogLevel::kWarn);
  // Miniature platform (2 cores, reduced sample counts) so every scenario
  // can afford its own full recollection.
  core::ExperimentSetup setup = core::small_setup();
  setup.data.warmup_steps = 30;
  setup.data.train_maps_per_benchmark = 40;
  setup.data.test_maps_per_benchmark = 15;
  setup.data.calibration_steps = 80;
  grid::PowerGrid grid(setup.grid);
  chip::Floorplan plan(grid, setup.floorplan);
  auto suite = workload::parsec_like_suite();
  suite.resize(2);
  const double vth = setup.data.emergency_threshold;

  const std::string cache = "inject_dataset.cache";
  fs::remove(cache);

  ResilienceReport clean_report;
  const core::Dataset reference =
      core::load_or_collect(cache, grid, plan, setup.data, suite,
                            &clean_report);
  const double clean_te = placement_te(reference, plan, vth);
  std::printf("== fault injection: clean reference TE = %.6f (cache: %s) "
              "==\n\n",
              clean_te, cache.c_str());

  TablePrinter table({"scenario", "detected as", "recovery", "TE delta",
                      "pass"});
  bool all_pass = true;

  // Cache scenarios: damage the file, confirm try_load flags it, then let
  // load_or_collect recover and compare the end-to-end result.
  const auto cache_scenario = [&](const char* name, auto&& corrupt) {
    corrupt();
    const StatusOr<core::Dataset> direct = core::Dataset::try_load(cache);
    ResilienceReport report;
    const core::Dataset recovered =
        core::load_or_collect(cache, grid, plan, setup.data, suite, &report);
    const double delta =
        std::abs(placement_te(recovered, plan, vth) - clean_te);
    const bool pass =
        !direct.ok() && report.recollects() >= 1 && delta <= 1e-9;
    all_pass = all_pass && pass;
    table.add_row(
        {name,
         direct.ok() ? "load succeeded (BUG)"
                     : error_code_name(direct.status().code()),
         report.recollects() >= 1 ? "recollected + re-cached"
                                  : "NO RECOLLECTION",
         TablePrinter::sci(delta, 2), pass ? "yes" : "NO"});
  };

  cache_scenario("cache: byte flipped mid-file", [&] {
    const auto size = fs::file_size(cache);
    std::fstream f(cache, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&byte, 1);
  });
  cache_scenario("cache: truncated to 2/3", [&] {
    fs::resize_file(cache, fs::file_size(cache) * 2 / 3);
  });

  // Truncated trace CSV: a row cut mid-stream must surface as corruption
  // (so batch importers can skip the file), never as a shorter trace.
  {
    const std::string trace_path = "inject_trace.csv";
    workload::PowerTrace trace(4);
    linalg::Vector row(4);
    for (std::size_t s = 0; s < 10; ++s) {
      for (std::size_t b = 0; b < 4; ++b)
        row[b] = 1e-3 * static_cast<double>(s * 4 + b + 1);
      trace.append(row);
    }
    trace.save_csv(trace_path);
    std::ifstream in(trace_path, std::ios::binary);
    const std::string contents((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    in.close();
    // Cut at the last comma: the final row keeps too few cells.
    fs::resize_file(trace_path, contents.rfind(','));
    const StatusOr<workload::PowerTrace> loaded =
        workload::PowerTrace::try_load_csv(trace_path);
    const bool pass = !loaded.ok() &&
                      loaded.status().code() == ErrorCode::kCorruption;
    all_pass = all_pass && pass;
    table.add_row({"trace csv: truncated mid-row",
                   loaded.ok() ? "load succeeded (BUG)"
                               : error_code_name(loaded.status().code()),
                   "importer skips the file", "-", pass ? "yes" : "NO"});
    fs::remove(trace_path);
  }

  // Forced CG non-convergence: a 1-iteration budget can never converge, so
  // every PCG step must escalate through the ladder and land on the direct
  // factorization — voltages must match the clean direct run exactly.
  {
    grid::TransientSim clean_sim(grid, setup.data.dt,
                                 grid::StepSolver::kDirect);
    grid::TransientSim hobbled(grid, setup.data.dt,
                               grid::StepSolver::kPcgIc0);
    sparse::CgOptions strangled;
    strangled.max_iterations = 1;
    hobbled.set_cg_options(strangled);
    ResilienceReport report;
    hobbled.set_resilience_report(&report);

    linalg::Vector load(grid.device_node_count());
    double max_diff = 0.0;
    for (std::size_t s = 0; s < 25; ++s) {
      for (std::size_t n = 0; n < load.size(); ++n)
        load[n] = 1e-4 * static_cast<double>((n + 3 * s) % 7);
      const linalg::Vector& v_clean = clean_sim.step(load);
      const linalg::Vector& v_hobbled = hobbled.step(load);
      for (std::size_t n = 0; n < v_clean.size(); ++n)
        max_diff = std::max(max_diff, std::abs(v_clean[n] - v_hobbled[n]));
    }
    const bool pass = report.fallbacks() >= 1 && max_diff <= 1e-9;
    all_pass = all_pass && pass;
    table.add_row({"CG capped at 1 iteration",
                   report.fallbacks() >= 1 ? "non-convergence"
                                           : "NOT DETECTED",
                   std::string("escalated to ") + hobbled.active_solver(),
                   TablePrinter::sci(max_diff, 2), pass ? "yes" : "NO"});
  }

  table.print(std::cout);
  fs::remove(cache);
  std::printf("\n%s\n", all_pass
                            ? "all scenarios recovered; results match the "
                              "clean run within 1e-9"
                            : "SOME SCENARIOS FAILED TO RECOVER");
  return all_pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args("robustness_noise — prediction/detection vs sensor noise");
  benchutil::add_common_flags(args);
  args.add_flag("sensors", "4", "sensors per core");
  args.add_bool("inject", false,
                "run the runtime fault-injection suite (corrupted cache, "
                "truncated cache, truncated trace csv, forced CG "
                "non-convergence) instead of the noise sweep");
  try {
    if (!args.parse(argc, argv)) return 0;
    if (args.get_bool("inject")) return run_injection();
    const auto platform = benchutil::load_platform(args);
    const auto& data = platform.data;
    const double vth = platform.setup.data.emergency_threshold;

    core::PipelineConfig config;
    config.lambda = 6.0;
    config.sensors_per_core =
        static_cast<std::size_t>(args.get_int("sensors"));
    const auto model = core::fit_placement(data, *platform.floorplan, config);
    const auto& rows = model.sensor_rows();
    const linalg::Matrix x_train = data.x_train.select_rows(rows);
    const linalg::Matrix x_test = data.x_test.select_rows(rows);
    const core::OlsModel clean_model(x_train, data.f_train);

    struct Level {
      const char* name;
      core::SensorNoiseModel noise;
    };
    std::vector<Level> levels;
    levels.push_back({"ideal", {}});
    levels.push_back({"1 mV rms", {.gaussian_sigma = 1e-3}});
    levels.push_back({"2 mV rms + 8-bit ADC",
                      {.gaussian_sigma = 2e-3, .lsb = 1.0 / 256.0}});
    levels.push_back({"5 mV rms + 3 mV offs",
                      {.gaussian_sigma = 5e-3, .offset_sigma = 3e-3}});
    levels.push_back(
        {"10 mV rms", {.gaussian_sigma = 10e-3}});

    std::printf("== robustness: %zu sensors, clean-trained vs "
                "noise-trained ==\n",
                rows.size());
    benchutil::RunReport report("robustness_noise");
    report.scalar("sensors_placed", static_cast<double>(rows.size()));
    report.timing("platform_load", platform.load_ms);
    TablePrinter table({"sensor noise", "clean rel err(%)", "clean TE",
                        "retrained rel err(%)", "retrained TE"});
    std::size_t level_index = 0;
    for (const auto& level : levels) {
      const linalg::Matrix x_test_noisy =
          core::apply_sensor_noise(x_test, level.noise, 101);

      const linalg::Matrix pred_clean = clean_model.predict(x_test_noisy);
      const auto rates_clean =
          core::evaluate_prediction_detector(data.f_test, pred_clean, vth);

      const linalg::Matrix x_train_noisy =
          core::apply_sensor_noise(x_train, level.noise, 202);
      const core::OlsModel retrained(x_train_noisy, data.f_train);
      const linalg::Matrix pred_retrained = retrained.predict(x_test_noisy);
      const auto rates_retrained = core::evaluate_prediction_detector(
          data.f_test, pred_retrained, vth);

      const double rel_clean =
          core::relative_error(data.f_test, pred_clean);
      const double rel_retrained =
          core::relative_error(data.f_test, pred_retrained);
      const std::string tag = "@" + std::to_string(level_index++);
      report.scalar("clean_rel_err" + tag, rel_clean);
      report.scalar("clean_te" + tag, rates_clean.total_error_rate());
      report.scalar("retrained_rel_err" + tag, rel_retrained);
      report.scalar("retrained_te" + tag,
                    rates_retrained.total_error_rate());
      table.add_row(
          {level.name, TablePrinter::fmt(100.0 * rel_clean, 3),
           TablePrinter::fmt(rates_clean.total_error_rate(), 4),
           TablePrinter::fmt(100.0 * rel_retrained, 3),
           TablePrinter::fmt(rates_retrained.total_error_rate(), 4)});
    }
    table.print(std::cout);
    std::printf("\n(noise-aware refits absorb sensor imperfections; the "
                "methodology degrades gracefully until noise reaches the "
                "droop scale)\n");
    benchutil::write_report(args, &platform, report);
    benchutil::print_resilience(platform);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
