// Robustness study: how much of the methodology survives realistic
// sensors?
//
// The paper evaluates with ideal sensor readings. Here the placed sensors
// are degraded with ADC quantization, thermal noise, and per-instance
// offsets; two training regimes are compared at every noise level:
//   * clean-trained  — the design-time model sees ideal simulations and is
//                      surprised by noise at runtime;
//   * noise-trained  — the refit is performed on noisy readings, letting
//                      OLS absorb the noise statistics.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/emergency.hpp"
#include "core/ols_model.hpp"
#include "core/pipeline.hpp"
#include "core/sensor_noise.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vmap;
  CliArgs args("robustness_noise — prediction/detection vs sensor noise");
  benchutil::add_common_flags(args);
  args.add_flag("sensors", "4", "sensors per core");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto platform = benchutil::load_platform(args);
    const auto& data = platform.data;
    const double vth = platform.setup.data.emergency_threshold;

    core::PipelineConfig config;
    config.lambda = 6.0;
    config.sensors_per_core =
        static_cast<std::size_t>(args.get_int("sensors"));
    const auto model = core::fit_placement(data, *platform.floorplan, config);
    const auto& rows = model.sensor_rows();
    const linalg::Matrix x_train = data.x_train.select_rows(rows);
    const linalg::Matrix x_test = data.x_test.select_rows(rows);
    const core::OlsModel clean_model(x_train, data.f_train);

    struct Level {
      const char* name;
      core::SensorNoiseModel noise;
    };
    std::vector<Level> levels;
    levels.push_back({"ideal", {}});
    levels.push_back({"1 mV rms", {.gaussian_sigma = 1e-3}});
    levels.push_back({"2 mV rms + 8-bit ADC",
                      {.gaussian_sigma = 2e-3, .lsb = 1.0 / 256.0}});
    levels.push_back({"5 mV rms + 3 mV offs",
                      {.gaussian_sigma = 5e-3, .offset_sigma = 3e-3}});
    levels.push_back(
        {"10 mV rms", {.gaussian_sigma = 10e-3}});

    std::printf("== robustness: %zu sensors, clean-trained vs "
                "noise-trained ==\n",
                rows.size());
    TablePrinter table({"sensor noise", "clean rel err(%)", "clean TE",
                        "retrained rel err(%)", "retrained TE"});
    for (const auto& level : levels) {
      const linalg::Matrix x_test_noisy =
          core::apply_sensor_noise(x_test, level.noise, 101);

      const linalg::Matrix pred_clean = clean_model.predict(x_test_noisy);
      const auto rates_clean =
          core::evaluate_prediction_detector(data.f_test, pred_clean, vth);

      const linalg::Matrix x_train_noisy =
          core::apply_sensor_noise(x_train, level.noise, 202);
      const core::OlsModel retrained(x_train_noisy, data.f_train);
      const linalg::Matrix pred_retrained = retrained.predict(x_test_noisy);
      const auto rates_retrained = core::evaluate_prediction_detector(
          data.f_test, pred_retrained, vth);

      table.add_row(
          {level.name,
           TablePrinter::fmt(
               100.0 * core::relative_error(data.f_test, pred_clean), 3),
           TablePrinter::fmt(rates_clean.total_error_rate(), 4),
           TablePrinter::fmt(
               100.0 * core::relative_error(data.f_test, pred_retrained), 3),
           TablePrinter::fmt(rates_retrained.total_error_rate(), 4)});
    }
    table.print(std::cout);
    std::printf("\n(noise-aware refits absorb sensor imperfections; the "
                "methodology degrades gracefully until noise reaches the "
                "droop scale)\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
