// Chaos + throughput harness for the multi-chip monitoring service.
//
// Two halves, one binary:
//
//  * Throughput: a threaded MonitorFleet at each requested shard count
//    serves a synthetic fleet (--chips dies of one design, --samples
//    readings each) and reports readings/sec plus the p99 ingest-to-alarm
//    latency. Wall times go into the run report as calibration-normalized
//    timings; a zero-loss invariant (every admitted reading decided) is
//    checked on every run.
//
//  * Chaos scenarios (--inject): nan_storm, burst_overload, stuck_shard,
//    and checkpoint_kill each drive the fleet through one failure mode and
//    end with the harness proving ZERO fleet-wide alarm loss. The proof is
//    replay-based: the synthetic streams are pure functions of
//    (seed, chip, t), so the harness regenerates exactly the subsequence
//    each healthy chip actually accepted, feeds it through a standalone
//    reference OnlineMonitor, and requires bit-identical counters and the
//    identical alarm-transition sequence. Scenario outcomes are
//    deterministic (pump mode, or timing-independent predicates in
//    threaded mode) and are gated byte-exactly by tools/perf_gate.py.
//
// Any failed invariant exits 1 so CI can gate on the binary directly, with
// or without the report diff.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/online_monitor.hpp"
#include "serve/checkpoint.hpp"
#include "serve/fleet.hpp"
#include "serve/synthetic.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace vmap;
using namespace vmap::serve;

// ---------------------------------------------------------------------------
// Harness plumbing

struct Harness {
  benchutil::RunReport report{"serving_suite"};
  TablePrinter table{{"scenario", "check", "result"}};
  bool ok = true;

  /// Records a deterministic scenario outcome: gated byte-exactly.
  void check(const std::string& scenario, const std::string& name,
             bool passed, double value) {
    report.scalar(scenario + "_" + name, value);
    table.add_row({scenario, name,
                   passed ? TablePrinter::fmt(value, 0)
                          : "FAIL(" + TablePrinter::fmt(value, 0) + ")"});
    if (!passed) {
      ok = false;
      std::fprintf(stderr, "FAIL: %s/%s = %g\n", scenario.c_str(),
                   name.c_str(), value);
    }
  }
  void require(const std::string& scenario, const std::string& name,
               bool passed) {
    check(scenario, name, passed, passed ? 1.0 : 0.0);
  }
};

Reading make_reading(ChipId chip, std::uint64_t seq, linalg::Vector values) {
  Reading r;
  r.chip = chip;
  r.sequence = seq;
  r.values = std::move(values);
  return r;
}

/// Replays `seqs` of one synthetic stream through a standalone reference
/// monitor: the ground truth the fleet's decisions must match bit-exactly.
struct Replay {
  core::OnlineMonitor::Counters counters;
  std::vector<std::uint64_t> transitions;  ///< sequences where alarm flipped
};

Replay replay_reference(const SyntheticFleetSpec& spec,
                        const std::shared_ptr<const core::PlacementModel>& m,
                        ChipId chip, const std::vector<std::uint64_t>& seqs) {
  core::OnlineMonitor monitor =
      make_synthetic_monitor(spec, m, /*fault_tolerant=*/false);
  Replay out;
  bool prev = false;
  for (std::uint64_t t : seqs) {
    const auto d = monitor.observe(synthetic_reading(spec, chip, t));
    if (d.alarm != prev) out.transitions.push_back(t);
    prev = d.alarm;
  }
  out.counters = monitor.counters();
  return out;
}

std::vector<std::uint64_t> iota_seqs(std::uint64_t first, std::uint64_t last) {
  std::vector<std::uint64_t> seqs;
  for (std::uint64_t t = first; t <= last; ++t) seqs.push_back(t);
  return seqs;
}

/// Per-chip alarm-transition sequences, in decision order.
std::map<ChipId, std::vector<std::uint64_t>> transitions_by_chip(
    const std::vector<AlarmEvent>& events) {
  std::map<ChipId, std::vector<std::uint64_t>> by_chip;
  for (const AlarmEvent& e : events) by_chip[e.chip].push_back(e.sequence);
  return by_chip;
}

bool counters_match(const core::OnlineMonitor::Counters& a,
                    const core::OnlineMonitor::Counters& b) {
  return a.alarm == b.alarm && a.crossing_streak == b.crossing_streak &&
         a.safe_streak == b.safe_streak && a.samples == b.samples &&
         a.alarm_samples == b.alarm_samples &&
         a.alarm_episodes == b.alarm_episodes &&
         a.degraded_samples == b.degraded_samples &&
         a.rejected_samples == b.rejected_samples;
}

/// Zero fleet-wide alarm loss: every alarm episode the chips counted is
/// present in the drained event stream (asserted edges), chip by chip.
/// Returns the number of missing/extra asserted events (0 = no loss).
std::uint64_t alarm_loss(const MonitorFleet& fleet,
                         const std::vector<AlarmEvent>& events) {
  std::map<ChipId, std::uint64_t> asserted;
  for (const AlarmEvent& e : events)
    if (e.asserted) ++asserted[e.chip];
  std::uint64_t loss = 0;
  for (ChipId chip = 0; chip < fleet.num_chips(); ++chip) {
    const std::uint64_t episodes = fleet.chip_stats(chip).alarm_episodes;
    const std::uint64_t seen = asserted.count(chip) ? asserted[chip] : 0;
    loss += episodes > seen ? episodes - seen : seen - episodes;
  }
  return loss;
}

// ---------------------------------------------------------------------------
// Scenario: NaN storm
//
// One chip's feed turns into an all-NaN storm mid-run. The domain must
// reject, quarantine, then suspend the chip; an operator resume plus a
// clean probation brings it back. The three healthy neighbors must be
// bit-identical to standalone monitors throughout — the storm may not leak.

void scenario_nan_storm(Harness& h) {
  const std::string kName = "nan_storm";
  SyntheticFleetSpec spec;
  FleetConfig fc;
  fc.shards = 2;
  fc.quarantine_after = 8;
  fc.probation = 16;
  fc.suspend_after = 3;
  MonitorFleet fleet(fc);
  auto model = make_synthetic_model(spec);
  constexpr std::size_t kChips = 4;
  constexpr ChipId kVictim = 0;
  constexpr std::uint64_t kSamples = 400;
  for (std::size_t c = 0; c < kChips; ++c)
    fleet.add_chip(make_synthetic_monitor(spec, model, false), model);

  linalg::Vector nan_vec(spec.sensors,
                         std::numeric_limits<double>::quiet_NaN());
  for (std::uint64_t t = 1; t <= kSamples; ++t) {
    for (ChipId chip = 0; chip < kChips; ++chip) {
      const bool storm = chip == kVictim && t > 100 && t <= 140;
      fleet.ingest(make_reading(
          chip, t, storm ? nan_vec : synthetic_reading(spec, chip, t)));
    }
    if (t % 25 == 0) fleet.pump();
    // The storm drives the victim to Suspended; the operator lifts it after
    // the feed has recovered, and probation earns the monitor back.
    if (t == 150) {
      fleet.pump();
      h.require(kName, "victim_suspended",
                fleet.chip_mode(kVictim) == ChipMode::kSuspended);
      fleet.resume_chip(kVictim);
    }
  }
  fleet.pump();

  // Containment: every reading the victim sent is accounted for, and the
  // chip recovered to healthy after probation.
  const ChipStats victim = fleet.chip_stats(kVictim);
  h.require(kName, "victim_recovered",
            fleet.chip_mode(kVictim) == ChipMode::kHealthy);
  h.check(kName, "victim_accounted",
          victim.accepted + victim.rejected_nonfinite +
                  victim.dropped_quarantined + victim.dropped_suspended ==
              kSamples,
          static_cast<double>(victim.accepted + victim.rejected_nonfinite +
                              victim.dropped_quarantined +
                              victim.dropped_suspended));
  h.check(kName, "victim_accepted", victim.accepted > 0,
          static_cast<double>(victim.accepted));

  // Isolation: neighbors are bit-identical to standalone monitors.
  const auto states = fleet.persisted_states();
  const auto events = fleet.drain_alarms();
  const auto by_chip = transitions_by_chip(events);
  bool neighbors_match = true;
  for (ChipId chip = 1; chip < kChips; ++chip) {
    const Replay want =
        replay_reference(spec, model, chip, iota_seqs(1, kSamples));
    if (!counters_match(states[chip].monitor, want.counters))
      neighbors_match = false;
    const auto it = by_chip.find(chip);
    const std::vector<std::uint64_t> got =
        it == by_chip.end() ? std::vector<std::uint64_t>{} : it->second;
    if (got != want.transitions) neighbors_match = false;
  }
  h.require(kName, "neighbors_match", neighbors_match);
  h.check(kName, "alarm_loss", alarm_loss(fleet, events) == 0,
          static_cast<double>(alarm_loss(fleet, events)));
}

// ---------------------------------------------------------------------------
// Scenario: burst overload
//
// Bursts larger than the shard queues force the reject-newest shed policy.
// In pump mode admission is sequential, so the accepted subsequence is
// deterministic: the harness records it at ingest time, replays it through
// reference monitors, and requires bit-identical decisions — overload may
// shed readings (counted), but it may never corrupt or lose an alarm.

void scenario_burst_overload(Harness& h) {
  const std::string kName = "burst_overload";
  SyntheticFleetSpec spec;
  FleetConfig fc;
  fc.shards = 2;
  fc.queue_capacity = 24;
  fc.max_batch = 16;
  MonitorFleet fleet(fc);
  auto model = make_synthetic_model(spec);
  constexpr std::size_t kChips = 4;
  constexpr std::uint64_t kBursts = 12;
  constexpr std::uint64_t kBurstLen = 30;  // 60 per shard vs capacity 24
  for (std::size_t c = 0; c < kChips; ++c)
    fleet.add_chip(make_synthetic_monitor(spec, model, false), model);

  std::vector<std::vector<std::uint64_t>> accepted_seqs(kChips);
  std::uint64_t shed = 0;
  for (std::uint64_t burst = 0; burst < kBursts; ++burst) {
    for (std::uint64_t i = 1; i <= kBurstLen; ++i) {
      const std::uint64_t t = burst * kBurstLen + i;
      for (ChipId chip = 0; chip < kChips; ++chip) {
        const auto result = fleet.ingest(
            make_reading(chip, t, synthetic_reading(spec, chip, t)));
        if (result.accepted)
          accepted_seqs[chip].push_back(t);
        else
          ++shed;
      }
    }
    fleet.pump();  // drain between bursts — the overload is the burst
  }

  const FleetStats stats = fleet.stats();
  h.check(kName, "shed", shed > 0 && stats.shed == shed,
          static_cast<double>(stats.shed));
  h.require(kName, "admitted_all_decided",
            stats.processed == stats.enqueued);

  // The accepted subsequence decides exactly as a standalone monitor would.
  const auto states = fleet.persisted_states();
  const auto events = fleet.drain_alarms();
  const auto by_chip = transitions_by_chip(events);
  bool replay_match = true;
  for (ChipId chip = 0; chip < kChips; ++chip) {
    const Replay want =
        replay_reference(spec, model, chip, accepted_seqs[chip]);
    if (!counters_match(states[chip].monitor, want.counters))
      replay_match = false;
    const auto it = by_chip.find(chip);
    const std::vector<std::uint64_t> got =
        it == by_chip.end() ? std::vector<std::uint64_t>{} : it->second;
    if (got != want.transitions) replay_match = false;
  }
  h.require(kName, "replay_match", replay_match);
  h.check(kName, "alarm_loss", alarm_loss(fleet, events) == 0,
          static_cast<double>(alarm_loss(fleet, events)));
}

// ---------------------------------------------------------------------------
// Scenario: stuck shard
//
// A chaos delay wedges one shard's worker mid-batch in threaded mode. The
// watchdog must declare the stall, steal the inflight remainder, suspend
// the culprit chip, and hand the shard to a replacement worker — while the
// other shard keeps flowing and no admitted reading is lost. Only
// timing-independent predicates are gated (the failover instant itself is
// scheduler-dependent).

void scenario_stuck_shard(Harness& h) {
  const std::string kName = "stuck_shard";
  SyntheticFleetSpec spec;
  FleetConfig fc;
  fc.shards = 2;
  fc.queue_capacity = 4096;
  fc.stall_timeout_ms = 80.0;
  fc.watchdog_period_ms = 10.0;
  MonitorFleet fleet(fc);
  auto model = make_synthetic_model(spec);
  // Chips 0 and 2 share shard 0; chip 1 rides shard 1 (chip % shards).
  for (int c = 0; c < 3; ++c)
    fleet.add_chip(make_synthetic_monitor(spec, model, false), model);
  fleet.set_chaos_delay_ms(0, 600.0);

  fleet.start();
  std::uint64_t enqueued = 0;
  auto feed = [&](ChipId chip, std::uint64_t seq) {
    if (fleet.ingest(
              make_reading(chip, seq, synthetic_reading(spec, chip, seq)))
            .accepted)
      ++enqueued;
  };
  feed(0, 1);  // the poison reading wedges shard 0
  for (std::uint64_t t = 1; t <= 60; ++t) {
    feed(2, t);
    feed(1, t);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (fleet.stats().stall_failovers == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The shard must keep serving its other chip after the failover.
  for (std::uint64_t t = 61; t <= 120; ++t) {
    feed(2, t);
    feed(1, t);
  }
  fleet.stop();

  const FleetStats stats = fleet.stats();
  h.require(kName, "failover", stats.stall_failovers >= 1);
  h.require(kName, "culprit_suspended",
            fleet.chip_mode(0) == ChipMode::kSuspended);
  h.require(kName, "admitted_all_decided", stats.processed == enqueued);

  // Both survivors got every reading, in order, across the failover — so
  // their decisions are bit-identical to standalone monitors.
  const auto states = fleet.persisted_states();
  const auto events = fleet.drain_alarms();
  const auto by_chip = transitions_by_chip(events);
  bool survivors_match = true;
  for (ChipId chip = 1; chip <= 2; ++chip) {
    const Replay want =
        replay_reference(spec, model, chip, iota_seqs(1, 120));
    if (!counters_match(states[chip].monitor, want.counters))
      survivors_match = false;
    const auto it = by_chip.find(chip);
    const std::vector<std::uint64_t> got =
        it == by_chip.end() ? std::vector<std::uint64_t>{} : it->second;
    if (got != want.transitions) survivors_match = false;
  }
  h.require(kName, "survivors_match", survivors_match);
  h.check(kName, "alarm_loss", alarm_loss(fleet, events) == 0,
          static_cast<double>(alarm_loss(fleet, events)));
}

// ---------------------------------------------------------------------------
// Scenario: checkpoint kill + restore
//
// The fleet is killed mid-run (destroyed, taking all in-memory state with
// it) right after a checkpoint. A fresh fleet restores the checkpoint and
// serves the second half of every stream. The interrupted run must be
// bit-identical to an uninterrupted control fleet — counters and the full
// alarm-transition history — proving a restart loses no alarm episode. A
// corrupted copy of the checkpoint must be rejected without touching the
// fleet.

void scenario_checkpoint_kill(Harness& h, const std::string& ckpt_path) {
  const std::string kName = "checkpoint_kill";
  SyntheticFleetSpec spec;
  constexpr std::size_t kChips = 3;
  constexpr std::uint64_t kSamples = 1200;
  constexpr std::uint64_t kKillAt = 600;

  FleetConfig fc;
  fc.shards = 2;
  auto model = make_synthetic_model(spec);
  auto build = [&]() {
    auto fleet = std::make_unique<MonitorFleet>(fc);
    // Chip 0 is fault-tolerant (detector + degraded bank state rides the
    // checkpoint too); the rest are plain monitors.
    fleet->add_chip(make_synthetic_monitor(spec, model, true), model);
    for (std::size_t c = 1; c < kChips; ++c)
      fleet->add_chip(make_synthetic_monitor(spec, model, false), model);
    return fleet;
  };
  auto advance = [&](MonitorFleet& fleet, std::uint64_t first,
                     std::uint64_t last) {
    for (std::uint64_t t = first; t <= last; ++t) {
      for (ChipId chip = 0; chip < kChips; ++chip)
        fleet.ingest(
            make_reading(chip, t, synthetic_reading(spec, chip, t)));
      if (t % 50 == 0) fleet.pump();
    }
    fleet.pump();
  };

  // Interrupted run: first half, checkpoint, kill, restore, second half.
  std::vector<AlarmEvent> events;
  auto fleet = build();
  advance(*fleet, 1, kKillAt);
  const auto first_half = fleet->drain_alarms();
  events.insert(events.end(), first_half.begin(), first_half.end());
  Status saved = save_fleet_checkpoint(*fleet, ckpt_path);
  h.require(kName, "checkpoint_saved", saved.ok());
  fleet.reset();  // the "kill": all in-memory state is gone

  fleet = build();
  // A torn/corrupted file must be rejected before any chip is touched.
  {
    std::ifstream in(ckpt_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 0x40;
    const std::string corrupt_path = ckpt_path + ".corrupt";
    std::ofstream out(corrupt_path, std::ios::binary);
    out << bytes;
    out.close();
    const Status rejected = load_fleet_checkpoint(*fleet, corrupt_path);
    h.require(kName, "corruption_rejected",
              rejected.code() == ErrorCode::kCorruption &&
                  fleet->chip_stats(0).samples == 0);
    std::remove(corrupt_path.c_str());
  }
  const Status loaded = load_fleet_checkpoint(*fleet, ckpt_path);
  h.require(kName, "checkpoint_loaded", loaded.ok());
  advance(*fleet, kKillAt + 1, kSamples);
  const auto second_half = fleet->drain_alarms();
  events.insert(events.end(), second_half.begin(), second_half.end());

  // Control: the same streams with no kill.
  auto control = build();
  advance(*control, 1, kSamples);
  const auto control_events = control->drain_alarms();

  const auto got_states = fleet->persisted_states();
  const auto want_states = control->persisted_states();
  bool resume_match = true;
  for (ChipId chip = 0; chip < kChips; ++chip) {
    const auto& a = got_states[chip];
    const auto& b = want_states[chip];
    if (!counters_match(a.monitor, b.monitor) ||
        a.last_sequence != b.last_sequence || a.accepted != b.accepted ||
        a.mode != b.mode)
      resume_match = false;
  }
  h.require(kName, "resume_match", resume_match);
  auto got_transitions = transitions_by_chip(events);
  auto want_transitions = transitions_by_chip(control_events);
  h.require(kName, "alarm_history_match",
            got_transitions == want_transitions);
  h.check(kName, "alarm_loss", alarm_loss(*fleet, events) == 0,
          static_cast<double>(alarm_loss(*fleet, events)));
  std::remove(ckpt_path.c_str());
}

// ---------------------------------------------------------------------------
// Throughput

struct ThroughputRow {
  std::size_t shards = 0;
  double wall_ms = 0.0;
  double readings_per_sec = 0.0;
  double p99_alarm_ms = 0.0;
  /// Interpolated quantiles from the serve.alarm_latency_ms histogram —
  /// the exposition-path numbers, reported alongside the exact-sort p99.
  double hist_p50_ms = 0.0;
  double hist_p99_ms = 0.0;
  std::uint64_t shed = 0;
};

ThroughputRow run_throughput(const SyntheticFleetSpec& spec,
                             std::size_t shards, std::size_t chips,
                             std::uint64_t samples, Harness& h) {
  FleetConfig fc;
  fc.shards = shards;
  fc.queue_capacity = 16384;
  fc.max_batch = 256;
  fc.producer_ring_capacity = 16384;
  MonitorFleet fleet(fc);
  auto model = make_synthetic_model(spec);
  for (std::size_t c = 0; c < chips; ++c)
    fleet.add_chip(make_synthetic_monitor(spec, model, false), model);

  // The whole synthetic feed runs on this one thread, so a single producer
  // lane gives it the mutex-free SPSC fast path into every shard. The chaos
  // scenarios keep plain ingest(): their invariants are about the shared
  // queue path.
  const ProducerId producer = fleet.register_producer();
  // Scope the alarm-latency histogram to this run so the reported
  // quantiles describe one (shards, rep) configuration, not the whole
  // sweep so far.
  metrics::Histogram& alarm_hist = metrics::histogram(
      "serve.alarm_latency_ms", metrics::default_time_buckets_ms());
  alarm_hist.reset();
  fleet.start();
  Timer timer;
  std::uint64_t enqueued = 0;
  for (std::uint64_t t = 1; t <= samples; ++t)
    for (ChipId chip = 0; chip < chips; ++chip)
      if (fleet.ingest(producer,
                       make_reading(chip, t, synthetic_reading(spec, chip, t)))
              .accepted)
        ++enqueued;
  fleet.stop();
  const double wall_ms = timer.millis();

  const FleetStats stats = fleet.stats();
  // Zero-loss invariant: overload may shed at admission, but everything
  // admitted is decided.
  if (stats.processed != enqueued) {
    h.ok = false;
    std::fprintf(stderr,
                 "FAIL: throughput@%zu lost readings (processed %llu of "
                 "%llu admitted)\n",
                 shards, static_cast<unsigned long long>(stats.processed),
                 static_cast<unsigned long long>(enqueued));
  }

  std::vector<double> latencies;
  for (const AlarmEvent& e : fleet.drain_alarms())
    latencies.push_back(e.latency_ms);
  double p99 = 0.0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(latencies.size()))) - 1;
    p99 = latencies[std::min(idx, latencies.size() - 1)];
  }

  ThroughputRow row;
  row.shards = shards;
  row.wall_ms = wall_ms;
  row.readings_per_sec =
      wall_ms > 0.0 ? static_cast<double>(stats.processed) / wall_ms * 1e3
                    : 0.0;
  row.p99_alarm_ms = p99;
  const metrics::Histogram::Snapshot hist = alarm_hist.snapshot();
  row.hist_p50_ms = metrics::histogram_quantile(hist, 0.50);
  row.hist_p99_ms = metrics::histogram_quantile(hist, 0.99);
  row.shed = stats.shed;
  return row;
}

std::vector<std::size_t> parse_list(const std::string& spec) {
  std::vector<std::size_t> list;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const unsigned long v = std::stoul(spec.substr(pos, next - pos));
    if (v >= 1) list.push_back(static_cast<std::size_t>(v));
    pos = next + 1;
  }
  return list;
}

bool scenario_selected(const std::string& inject, const std::string& name) {
  if (inject == "none") return false;
  if (inject == "all") return true;
  std::size_t pos = 0;
  while (pos < inject.size()) {
    std::size_t next = inject.find(',', pos);
    if (next == std::string::npos) next = inject.size();
    if (inject.substr(pos, next - pos) == name) return true;
    pos = next + 1;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(
      "serving_suite — throughput + chaos harness for the multi-chip "
      "monitoring service: readings/sec and p99 alarm latency per shard "
      "count, then fault-injection scenarios (NaN storm, burst overload, "
      "stuck shard, checkpoint kill+restore) each proving zero fleet-wide "
      "alarm loss by replaying the accepted streams through reference "
      "monitors");
  args.add_flag("threads-list", "1,2,4",
                "comma-separated shard/worker counts for the throughput runs");
  args.add_flag("chips", "32", "chips per throughput fleet");
  args.add_flag("samples", "3000", "readings per chip per throughput run");
  args.add_flag("inject", "all",
                "chaos scenarios: all, none, or a comma list of nan_storm,"
                "burst_overload,stuck_shard,checkpoint_kill");
  args.add_flag("ckpt", "vmap_serving.ckpt",
                "scratch path for the checkpoint_kill scenario");
  args.add_flag("report", "",
                "write a machine-readable run report (JSON) to this path: "
                "scenario outcomes (gated byte-exactly), wall times and p99 "
                "alarm latencies (calibration-normalized)");
  try {
    if (!args.parse(argc, argv)) return 0;
    set_log_level(LogLevel::kWarn);

    Harness h;
    const std::string inject = args.get("inject");

    // --- throughput -----------------------------------------------------
    SyntheticFleetSpec spec;
    const auto chips = static_cast<std::size_t>(args.get_int("chips"));
    const auto samples = static_cast<std::uint64_t>(args.get_int("samples"));
    std::vector<ThroughputRow> rows;
    for (std::size_t shards : parse_list(args.get("threads-list"))) {
      // Best of three: the wall times feed the perf gate, and a single
      // 100-ms threaded run is scheduler-noisy at gate tolerance.
      ThroughputRow row;
      for (int rep = 0; rep < 3; ++rep) {
        const ThroughputRow r =
            run_throughput(spec, shards, chips, samples, h);
        if (rep == 0 || r.wall_ms < row.wall_ms) row = r;
      }
      rows.push_back(row);
      std::fprintf(stderr,
                   "[serve] shards=%zu %.0f readings/s, p99 alarm %.2f ms, "
                   "shed %llu\n",
                   row.shards, row.readings_per_sec, row.p99_alarm_ms,
                   static_cast<unsigned long long>(row.shed));
    }

    // --- chaos ----------------------------------------------------------
    std::size_t scenarios = 0;
    if (scenario_selected(inject, "nan_storm")) {
      ++scenarios;
      scenario_nan_storm(h);
    }
    if (scenario_selected(inject, "burst_overload")) {
      ++scenarios;
      scenario_burst_overload(h);
    }
    if (scenario_selected(inject, "stuck_shard")) {
      ++scenarios;
      scenario_stuck_shard(h);
    }
    if (scenario_selected(inject, "checkpoint_kill")) {
      ++scenarios;
      scenario_checkpoint_kill(h, args.get("ckpt"));
    }

    // --- report ---------------------------------------------------------
    TablePrinter tp({"shards", "wall(ms)", "readings/s", "p99 alarm(ms)",
                     "shed"});
    for (const auto& r : rows)
      tp.add_row({TablePrinter::fmt(r.shards), TablePrinter::fmt(r.wall_ms, 1),
                  TablePrinter::fmt(r.readings_per_sec, 0),
                  TablePrinter::fmt(r.p99_alarm_ms, 2),
                  TablePrinter::fmt(r.shed)});
    std::printf("== serving throughput (%zu chips x %llu readings) ==\n",
                chips, static_cast<unsigned long long>(samples));
    tp.print(std::cout);
    if (scenarios > 0) {
      std::printf("\n== chaos scenarios (%s) ==\n",
                  h.ok ? "all invariants held" : "FAILED");
      h.table.print(std::cout);
    }

    h.report.scalar("chaos_scenarios", static_cast<double>(scenarios));
    h.report.scalar("chaos_pass", h.ok ? 1.0 : 0.0);
    for (const auto& r : rows) {
      h.report.timing("serve@" + std::to_string(r.shards), r.wall_ms);
      h.report.timing("alarm_p99@" + std::to_string(r.shards),
                      r.p99_alarm_ms);
      h.report.timing("alarm_hist_p50@" + std::to_string(r.shards),
                      r.hist_p50_ms);
      h.report.timing("alarm_hist_p99@" + std::to_string(r.shards),
                      r.hist_p99_ms);
    }
    benchutil::write_report(args, nullptr, h.report);

    return h.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
