// Engineering microbenchmarks (google-benchmark): group-lasso solver
// scaling (BCD vs FISTA), sparse direct vs iterative grid solves, transient
// step cost, and least-squares kernels. These back DESIGN.md §5's ablation
// notes rather than any specific paper figure.

#include <benchmark/benchmark.h>

#include "core/group_lasso.hpp"
#include "grid/power_grid.hpp"
#include "grid/transient.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "sparse/cg.hpp"
#include "sparse/skyline_cholesky.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace vmap;

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  return m;
}

core::GroupLassoProblem planted_problem(std::size_t m, std::size_t k,
                                        std::size_t n) {
  Rng rng(42);
  linalg::Matrix z = random_matrix(m, n, 1);
  linalg::Matrix beta(k, m);
  for (std::size_t s = 0; s < m; s += m / 4 + 1)
    for (std::size_t kk = 0; kk < k; ++kk) beta(kk, s) = rng.normal();
  linalg::Matrix g = linalg::matmul(beta, z);
  for (std::size_t kk = 0; kk < k; ++kk)
    for (std::size_t c = 0; c < n; ++c) g(kk, c) += 0.1 * rng.normal();
  return core::GroupLassoProblem::from_data(z, g);
}

void BM_GroupLassoBcd(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto problem = planted_problem(m, 30, 1000);
  core::GroupLasso solver(problem);
  const double mu = solver.mu_max() * 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_penalized(mu));
  }
  state.SetLabel("M=" + std::to_string(m) + " K=30 N=1000");
}
BENCHMARK(BM_GroupLassoBcd)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GroupLassoFista(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto problem = planted_problem(m, 30, 1000);
  core::GroupLassoOptions options;
  options.solver = core::GlSolver::kFista;
  options.max_iterations = 5000;
  core::GroupLasso solver(problem, options);
  const double mu = solver.mu_max() * 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_penalized(mu));
  }
  state.SetLabel("M=" + std::to_string(m) + " K=30 N=1000");
}
BENCHMARK(BM_GroupLassoFista)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GroupLassoBudget(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto problem = planted_problem(128, 30, 1000);
  core::GroupLasso solver(problem);
  set_thread_count(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_budget(2.0));
  }
  set_thread_count(1);
  state.SetLabel("budget path, M=128 threads=" + std::to_string(threads));
}
BENCHMARK(BM_GroupLassoBudget)->Arg(1)->Arg(2);

grid::GridConfig bench_grid(std::size_t n) {
  grid::GridConfig c;
  c.nx = n;
  c.ny = n;
  c.pad_spacing = 12;
  return c;
}

void BM_SkylineFactorize(benchmark::State& state) {
  const grid::PowerGrid grid(bench_grid(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    sparse::SkylineCholesky factor(grid.conductance());
    benchmark::DoNotOptimize(factor.envelope_size());
  }
  state.SetLabel(std::to_string(state.range(0)) + "x" +
                 std::to_string(state.range(0)) + " grid");
}
BENCHMARK(BM_SkylineFactorize)->Arg(32)->Arg(64)->Arg(96);

void BM_SkylineSolve(benchmark::State& state) {
  const grid::PowerGrid grid(bench_grid(static_cast<std::size_t>(state.range(0))));
  const sparse::SkylineCholesky factor(grid.conductance());
  Rng rng(3);
  linalg::Vector b(grid.node_count());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(factor.solve(b));
  state.SetLabel(std::to_string(state.range(0)) + "x" +
                 std::to_string(state.range(0)) + " grid");
}
BENCHMARK(BM_SkylineSolve)->Arg(32)->Arg(64)->Arg(96);

void BM_PcgIc0Solve(benchmark::State& state) {
  const grid::PowerGrid grid(bench_grid(static_cast<std::size_t>(state.range(0))));
  const auto& a = grid.conductance();
  const auto precond = sparse::ic0_preconditioner(a);
  Rng rng(4);
  linalg::Vector b(grid.node_count());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.normal();
  sparse::CgOptions options;
  options.tolerance = 1e-10;
  for (auto _ : state)
    benchmark::DoNotOptimize(sparse::conjugate_gradient(a, b, precond, options));
  state.SetLabel(std::to_string(state.range(0)) + "x" +
                 std::to_string(state.range(0)) + " grid");
}
BENCHMARK(BM_PcgIc0Solve)->Arg(32)->Arg(64)->Arg(96);

void BM_TransientStep(benchmark::State& state) {
  const grid::PowerGrid grid(bench_grid(static_cast<std::size_t>(state.range(0))));
  grid::TransientSim sim(grid, 100e-12);
  Rng rng(5);
  linalg::Vector load(grid.node_count());
  for (std::size_t i = 0; i < load.size(); ++i)
    load[i] = rng.bernoulli(0.3) ? 1e-3 : 0.0;
  for (auto _ : state) benchmark::DoNotOptimize(sim.step(load));
  state.SetLabel(std::to_string(state.range(0)) + "x" +
                 std::to_string(state.range(0)) + " grid");
}
BENCHMARK(BM_TransientStep)->Arg(32)->Arg(64)->Arg(96);

// --- dense matmul: naive reference vs the cache-blocked kernel, and the
// blocked kernel's thread scaling (labels carry a threads= column). The
// blocked kernel is bit-identical to the naive one at every thread count;
// only the wall clock should move.

void BM_MatmulNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, 4 * n, 8);
  const auto b = random_matrix(4 * n, n, 9);
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::matmul_reference(a, b));
  state.SetLabel("N=" + std::to_string(n) + "x" + std::to_string(4 * n) +
                 " threads=1 naive");
}
BENCHMARK(BM_MatmulNaive)->Arg(128)->Arg(256)->Arg(384);

void BM_MatmulBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto a = random_matrix(n, 4 * n, 8);
  const auto b = random_matrix(4 * n, n, 9);
  set_thread_count(threads);
  for (auto _ : state) benchmark::DoNotOptimize(linalg::matmul(a, b));
  set_thread_count(1);
  state.SetLabel("N=" + std::to_string(n) + "x" + std::to_string(4 * n) +
                 " threads=" + std::to_string(threads) + " blocked");
}
BENCHMARK(BM_MatmulBlocked)
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({384, 1})
    ->Args({256, 2})
    ->Args({384, 2})
    ->Args({384, 4});

void BM_GramMatrix(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto z = random_matrix(m, 4000, 10);
  set_thread_count(threads);
  for (auto _ : state) benchmark::DoNotOptimize(linalg::matmul_a_bt(z, z));
  set_thread_count(1);
  state.SetLabel("M=" + std::to_string(m) +
                 " N=4000 threads=" + std::to_string(threads));
}
BENCHMARK(BM_GramMatrix)->Args({128, 1})->Args({128, 2})->Args({256, 1})->Args({256, 2});

// --- SIMD dispatch: the raw kern:: primitives with the AVX2 path on vs
// forced off (results are bit-identical either way; only wall clock moves).

void BM_KernDotAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool simd = state.range(1) != 0;
  Rng rng(13);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  const bool was = linalg::kern::simd_enabled();
  linalg::kern::set_simd_enabled(simd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::kern::dot(n, x.data(), y.data()));
    linalg::kern::axpy(n, 1e-9, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  linalg::kern::set_simd_enabled(was);
  state.SetLabel("n=" + std::to_string(n) + " " + (simd ? "simd" : "scalar"));
}
BENCHMARK(BM_KernDotAxpy)
    ->Args({1 << 12, 0})
    ->Args({1 << 12, 1})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1});

void BM_MatmulScalarDispatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool simd = state.range(1) != 0;
  const auto a = random_matrix(n, 4 * n, 8);
  const auto b = random_matrix(4 * n, n, 9);
  const bool was = linalg::kern::simd_enabled();
  linalg::kern::set_simd_enabled(simd);
  for (auto _ : state) benchmark::DoNotOptimize(linalg::matmul(a, b));
  linalg::kern::set_simd_enabled(was);
  state.SetLabel("N=" + std::to_string(n) + "x" + std::to_string(4 * n) +
                 (simd ? " simd" : " scalar"));
}
BENCHMARK(BM_MatmulScalarDispatch)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1});

void BM_QrLeastSquares(benchmark::State& state) {
  const auto a = random_matrix(1000, static_cast<std::size_t>(state.range(0)), 6);
  Rng rng(7);
  linalg::Vector b(1000);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(linalg::lstsq(a, b));
  state.SetLabel("1000x" + std::to_string(state.range(0)));
}
BENCHMARK(BM_QrLeastSquares)->Arg(8)->Arg(32)->Arg(64);

void BM_NormalEquations(benchmark::State& state) {
  const auto a = random_matrix(1000, static_cast<std::size_t>(state.range(0)), 6);
  Rng rng(7);
  linalg::Vector b(1000);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.normal();
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::solve_normal_equations(a, b));
  state.SetLabel("1000x" + std::to_string(state.range(0)));
}
BENCHMARK(BM_NormalEquations)->Arg(8)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
