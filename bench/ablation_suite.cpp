// Ablations backing DESIGN.md §5: what each design choice buys.
//
//  A. Placement strategy at a fixed sensor budget — group lasso vs
//     Eagle-Eye (both variants) vs static-IR vs uniform vs random, all
//     evaluated with the same chip-wide OLS predictor so only *where* the
//     sensors sit differs.
//  B. OLS refit vs raw (shrunk) GL coefficients across λ — §2.3's bias.
//  C. Per-core vs whole-chip GL decomposition.
//  D. BCD vs FISTA on the same per-core problem — support agreement,
//     objective gap, runtime.
//  E. Model-backend matrix — every registered selection x prediction pair
//     head-to-head on the Table-2 metrics and fit wall time.
//
// --sections picks a subset (e.g. --sections=e for the CI ablation gate).

#include <cctype>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/baselines.hpp"
#include "core/eagle_eye.hpp"
#include "core/emergency.hpp"
#include "core/group_lasso.hpp"
#include "core/normalizer.hpp"
#include "core/ols_model.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace vmap;

std::string scalar_key(std::string name) {
  for (char& c : name)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return name;
}

void placement_ablation(const benchutil::Platform& platform,
                        std::size_t sensors_per_core,
                        benchutil::RunReport& report) {
  const auto& data = platform.data;
  const std::size_t total =
      sensors_per_core * platform.floorplan->core_count();

  std::printf("\n== A. placement strategy at %zu sensors (%zu per core), "
              "identical OLS predictor ==\n",
              total, sensors_per_core);
  TablePrinter table({"placement", "rel error(%)", "rmse(mV)", "ME", "WAE",
                      "TE"});
  auto add = [&](const std::string& name,
                 const std::vector<std::size_t>& rows) {
    const auto eval = core::evaluate_placement_with_ols(data, rows);
    report.scalar("rel_err." + scalar_key(name), eval.relative_error);
    report.scalar("te." + scalar_key(name),
                  eval.detection.total_error_rate());
    table.add_row({name, TablePrinter::fmt(100.0 * eval.relative_error, 3),
                   TablePrinter::fmt(1e3 * eval.rmse_volts, 2),
                   TablePrinter::fmt(eval.detection.miss_rate(), 4),
                   TablePrinter::fmt(eval.detection.wrong_alarm_rate(), 4),
                   TablePrinter::fmt(eval.detection.total_error_rate(), 4)});
  };

  core::PipelineConfig config;
  config.lambda = 6.0;
  config.sensors_per_core = sensors_per_core;
  const auto model = core::fit_placement(data, *platform.floorplan, config);
  add("group lasso (proposed)", model.sensor_rows());

  add("greedy forward R2",
      core::place_greedy_r2(data, *platform.floorplan, sensors_per_core));
  core::EagleEyeOptions worst;
  worst.strategy = core::EagleEyeStrategy::kWorstNoise;
  add("eagle-eye worst-noise",
      core::eagle_eye_place(data, *platform.floorplan, sensors_per_core,
                            worst));
  core::EagleEyeOptions coverage;
  coverage.strategy = core::EagleEyeStrategy::kGreedyCoverage;
  add("eagle-eye greedy-coverage",
      core::eagle_eye_place(data, *platform.floorplan, sensors_per_core,
                            coverage));
  add("worst static IR",
      core::place_worst_static_ir(data, *platform.grid, *platform.floorplan,
                                  total));
  add("PCA leverage", core::place_pca_leverage(data, total, total));
  add("uniform lattice", core::place_uniform(data, *platform.grid, total));
  add("random (seed 1)", core::place_random(data, total, 1));
  add("random (seed 2)", core::place_random(data, total, 2));
  table.print(std::cout);
}

void refit_ablation(const benchutil::Platform& platform,
                    benchutil::RunReport& report) {
  const auto& data = platform.data;
  std::printf("\n== B. OLS refit vs raw GL coefficients (§2.3) ==\n");
  TablePrinter table({"lambda", "#sensors", "refit rel err(%)",
                      "raw-GL rel err(%)", "raw/refit"});
  for (double paper_lambda : {10.0, 30.0, 60.0}) {
    core::PipelineConfig with;
    with.lambda = paper_lambda * 0.10;
    core::PipelineConfig without = with;
    without.refit_ols = false;
    const auto refit = core::fit_placement(data, *platform.floorplan, with);
    const auto raw = core::fit_placement(data, *platform.floorplan, without);
    const double e_refit =
        core::relative_error(data.f_test, refit.predict(data.x_test));
    const double e_raw =
        core::relative_error(data.f_test, raw.predict(data.x_test));
    const std::string tag = "@" + TablePrinter::fmt(paper_lambda, 0);
    report.scalar("refit_rel_err" + tag, e_refit);
    report.scalar("raw_rel_err" + tag, e_raw);
    table.add_row({TablePrinter::fmt(paper_lambda, 0),
                   TablePrinter::fmt(refit.sensor_rows().size()),
                   TablePrinter::fmt(100.0 * e_refit, 3),
                   TablePrinter::fmt(100.0 * e_raw, 3),
                   TablePrinter::fmt(e_raw / e_refit, 1)});
  }
  table.print(std::cout);
  std::printf("(the GL budget shrinks coefficients; predicting with them "
              "directly inflates the error — the paper's argument for the "
              "refit)\n");
}

void decomposition_ablation(const benchutil::Platform& platform,
                            benchutil::RunReport& report) {
  const auto& data = platform.data;
  std::printf("\n== C. per-core vs whole-chip group lasso ==\n");
  TablePrinter table({"mode", "lambda", "#sensors", "rel error(%)",
                      "fit time(s)"});
  for (bool per_core : {true, false}) {
    // Whole-chip gets the aggregate budget (8x the per-core one).
    core::PipelineConfig config;
    config.per_core = per_core;
    config.lambda = per_core
                        ? 3.0
                        : 3.0 * static_cast<double>(
                                    platform.floorplan->core_count());
    Timer timer;
    const auto model = core::fit_placement(data, *platform.floorplan, config);
    const double seconds = timer.seconds();
    const double err =
        core::relative_error(data.f_test, model.predict(data.x_test));
    const std::string mode = per_core ? "per_core" : "whole_chip";
    report.scalar("sensors." + mode,
                  static_cast<double>(model.sensor_rows().size()));
    report.scalar("rel_err." + mode, err);
    report.timing("fit." + mode, 1e3 * seconds);
    table.add_row({per_core ? "per-core (8 problems)" : "whole-chip (1 problem)",
                   TablePrinter::fmt(config.lambda, 1),
                   TablePrinter::fmt(model.sensor_rows().size()),
                   TablePrinter::fmt(100.0 * err, 3),
                   TablePrinter::fmt(seconds, 1)});
  }
  table.print(std::cout);
}

void solver_ablation(const benchutil::Platform& platform,
                     benchutil::RunReport& report) {
  const auto& data = platform.data;
  std::printf("\n== D. BCD vs FISTA on core 0's GL problem ==\n");

  const auto candidate_rows =
      data.candidate_rows_for_core(*platform.floorplan, 0);
  const auto block_rows = data.critical_rows_for_core(*platform.floorplan, 0);
  const linalg::Matrix x = data.x_train.select_rows(candidate_rows);
  const linalg::Matrix f = data.f_train.select_rows(block_rows);
  const core::Normalizer xn(x), fn(f);
  const auto problem =
      core::GroupLassoProblem::from_data(xn.normalize(x), fn.normalize(f));

  TablePrinter table({"solver", "mu/mu_max", "iterations", "converged",
                      "objective", "#active (T=1e-3)", "time(ms)"});
  for (double fraction : {0.5, 0.2, 0.05}) {
    for (auto solver : {core::GlSolver::kBcd, core::GlSolver::kFista}) {
      core::GroupLassoOptions options;
      options.solver = solver;
      options.max_iterations =
          solver == core::GlSolver::kFista ? 20000 : 2000;
      core::GroupLasso gl(problem, options);
      const double mu = gl.mu_max() * fraction;
      Timer timer;
      const auto result = gl.solve_penalized(mu);
      const double ms = timer.millis();
      // A numerical breakdown makes the whole comparison meaningless;
      // non-convergence only makes one row inexact, so flag it in place.
      if (!result.status.ok()) throw StatusError(result.status);
      const std::string tag =
          std::string(solver == core::GlSolver::kBcd ? "bcd" : "fista") +
          "@" + TablePrinter::fmt(fraction, 2);
      report.scalar("objective." + tag, result.objective);
      report.scalar("active." + tag,
                    static_cast<double>(result.active_groups(1e-3).size()));
      report.timing("solve." + tag, ms);
      table.add_row({solver == core::GlSolver::kBcd ? "BCD" : "FISTA",
                     TablePrinter::fmt(fraction, 2),
                     TablePrinter::fmt(result.iterations),
                     result.converged ? "yes" : "NO (cap)",
                     TablePrinter::fmt(result.objective, 6),
                     TablePrinter::fmt(result.active_groups(1e-3).size()),
                     TablePrinter::fmt(ms, 1)});
    }
  }
  table.print(std::cout);
  std::printf("(both reach the same objective and support; BCD's active-set "
              "sweeps are cheaper on sparse solutions)\n");
}

void backend_matrix_ablation(const benchutil::Platform& platform,
                             std::size_t sensors_per_core,
                             benchutil::RunReport& report) {
  const auto& data = platform.data;
  const double vth = platform.setup.data.emergency_threshold;
  std::printf("\n== E. model-backend matrix at %zu sensors per core ==\n",
              sensors_per_core);
  TablePrinter table({"selection", "prediction", "#sensors", "rel error(%)",
                      "ME", "WAE", "TE", "fit(ms)"});
  for (const char* sel : {"group_lasso", "greedy_r2"}) {
    for (const char* pred : {"ols", "spatial"}) {
      core::PipelineConfig config;
      config.lambda = 6.0;
      config.sensors_per_core = sensors_per_core;
      config.selection = sel;
      config.prediction = pred;
      Timer timer;
      const auto model = core::fit_placement(data, *platform.floorplan,
                                             config, platform.report.get());
      const double fit_ms = timer.millis();
      const linalg::Matrix f_pred = model.predict(data.x_test);
      const double err = core::relative_error(data.f_test, f_pred);
      const auto det =
          core::evaluate_prediction_detector(data.f_test, f_pred, vth);

      // Scalar keys carry the backend names so the CI ablation gate can
      // pattern-match rows: "backend.*spatial*" is tolerance-gated while
      // the GL+OLS row stays byte-exact.
      const std::string key = std::string("backend.") + sel + "+" + pred;
      report.scalar(key + ".rel_err", err);
      report.scalar(key + ".me", det.miss_rate());
      report.scalar(key + ".wae", det.wrong_alarm_rate());
      report.scalar(key + ".te", det.total_error_rate());
      report.scalar(key + ".sensors",
                    static_cast<double>(model.sensor_rows().size()));
      report.timing(key + ".fit", fit_ms);
      table.add_row({sel, pred, TablePrinter::fmt(model.sensor_rows().size()),
                     TablePrinter::fmt(100.0 * err, 3),
                     TablePrinter::fmt(det.miss_rate(), 4),
                     TablePrinter::fmt(det.wrong_alarm_rate(), 4),
                     TablePrinter::fmt(det.total_error_rate(), 4),
                     TablePrinter::fmt(fit_ms, 1)});
    }
  }
  table.print(std::cout);
  std::printf("(group_lasso+ols is the paper; the spatial surrogate adds "
              "grid-geometry patch features, greedy_r2 swaps the selector)\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args("ablation_suite — design-choice ablations (DESIGN.md §5)");
  benchutil::add_common_flags(args);
  args.add_flag("sensors", "2", "sensors per core for the placement table");
  args.add_flag("sections", "abcde",
                "which ablation sections to run (any subset of \"abcde\")");
  try {
    if (!args.parse(argc, argv)) return 0;
    std::string sections = args.get("sections");
    for (char& c : sections)
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    const auto enabled = [&sections](char c) {
      return sections.find(c) != std::string::npos;
    };
    const auto sensors = static_cast<std::size_t>(args.get_int("sensors"));
    const auto platform = benchutil::load_platform(args);
    benchutil::RunReport report("ablation_suite");
    report.tag("sections", sections);
    report.timing("platform_load", platform.load_ms);
    if (enabled('a')) placement_ablation(platform, sensors, report);
    if (enabled('b')) refit_ablation(platform, report);
    if (enabled('c')) decomposition_ablation(platform, report);
    if (enabled('d')) solver_ablation(platform, report);
    if (enabled('e')) backend_matrix_ablation(platform, sensors, report);
    benchutil::write_report(args, &platform, report);
    benchutil::print_resilience(platform);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
