// PDN-model robustness: does the methodology care what the power grid
// looks like?
//
// Repeats the core experiment (λ = 30 placement + prediction + detection)
// on three platform variants:
//   * baseline    — single-layer RC mesh (the default everywhere else);
//   * two-layer   — low-resistance top-metal mesh + vias, pads on top;
//   * inductive   — package inductance per pad (L·di/dt first droop).
// Each variant is a different physical platform, so each gets its own
// dataset (cached separately). The paper's claims should be insensitive
// to these modeling choices; this harness verifies that.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/emergency.hpp"
#include "core/ols_model.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

namespace {

using namespace vmap;

struct VariantResult {
  std::size_t sensors = 0;
  double rel_error = 0.0;
  double te = 0.0;
  double base_rate = 0.0;
};

VariantResult run_variant(const grid::GridConfig& grid_config,
                          const chip::FloorplanConfig& floorplan_config,
                          const core::DataConfig& data_config,
                          const std::vector<workload::BenchmarkProfile>& suite,
                          const std::string& cache, double lambda) {
  const grid::PowerGrid grid(grid_config);
  const chip::Floorplan floorplan(grid, floorplan_config);
  const core::Dataset data =
      core::load_or_collect(cache, grid, floorplan, data_config, suite);

  core::PipelineConfig config;
  config.lambda = lambda;
  const auto model = core::fit_placement(data, floorplan, config);
  const auto pred = model.predict(data.x_test);
  const auto rates = core::evaluate_prediction_detector(
      data.f_test, pred, data.config.emergency_threshold);

  VariantResult result;
  result.sensors = model.sensor_rows().size();
  result.rel_error = core::relative_error(data.f_test, pred);
  result.te = rates.total_error_rate();
  result.base_rate = static_cast<double>(rates.emergencies) /
                     static_cast<double>(rates.samples);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args("pdn_variants — methodology robustness across PDN models");
  benchutil::add_common_flags(args);
  args.add_flag("lambda", "30", "paper lambda for all variants");
  try {
    if (!args.parse(argc, argv)) return 0;
    auto setup = core::default_setup();
    setup.data.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    if (args.get_bool("quick")) {
      setup.data.train_maps_per_benchmark = 80;
      setup.data.test_maps_per_benchmark = 40;
      setup.data.warmup_steps = 150;
      setup.data.calibration_steps = 300;
    }
    const auto suite = workload::parsec_like_suite();
    const double lambda = benchutil::scaled_lambda(args, args.get_double("lambda"));

    std::printf("== PDN variants at lambda = %.0f ==\n",
                args.get_double("lambda"));
    TablePrinter table({"PDN model", "#sensors", "rel error(%)", "P(emerg)",
                        "det TE"});

    benchutil::RunReport report("pdn_variants");
    auto add = [&](const char* name, const char* key,
                   const grid::GridConfig& gc, const std::string& cache) {
      const auto r = run_variant(gc, setup.floorplan, setup.data, suite,
                                 cache, lambda);
      report.scalar(std::string("sensors.") + key,
                    static_cast<double>(r.sensors));
      report.scalar(std::string("rel_err.") + key, r.rel_error);
      report.scalar(std::string("te.") + key, r.te);
      table.add_row({name, TablePrinter::fmt(r.sensors),
                     TablePrinter::fmt(100.0 * r.rel_error, 3),
                     TablePrinter::fmt(r.base_rate, 2),
                     TablePrinter::fmt(r.te, 4)});
    };

    add("single-layer RC (baseline)", "baseline", setup.grid,
        args.get("cache"));

    grid::GridConfig layered = setup.grid;
    layered.two_layer = true;
    add("two-layer (top metal + vias)", "two_layer", layered,
        "vmap_dataset_2layer.cache");

    grid::GridConfig inductive = setup.grid;
    inductive.pad_inductance = 5e-10;
    add("inductive pads (L = 0.5 nH)", "inductive", inductive,
        "vmap_dataset_rlpads.cache");

    table.print(std::cout);
    std::printf("\n(the placement/prediction methodology should hold its "
                "accuracy across PDN models — only the droop dynamics "
                "change)\n");
    benchutil::write_report(args, nullptr, report);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
